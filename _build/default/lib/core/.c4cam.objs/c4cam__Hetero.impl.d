lib/core/hetero.ml: Driver Float Frontend List Printf String
