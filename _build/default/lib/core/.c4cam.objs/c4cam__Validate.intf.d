lib/core/validate.mli: Archspec Camsim
