lib/core/kernels.ml: Printf
