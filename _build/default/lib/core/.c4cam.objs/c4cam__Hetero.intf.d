lib/core/hetero.mli: Archspec Camsim Driver
