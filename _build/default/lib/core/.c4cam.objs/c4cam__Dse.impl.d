lib/core/dse.ml: Archspec Array Driver Gpu_model Kernels Printf Workloads
