lib/core/autotune.ml: Archspec Camsim Dse List
