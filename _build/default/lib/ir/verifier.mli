(** Structural and per-op verification.

    Checks performed:
    - SSA: every operand is defined before use (function arguments, block
      arguments of enclosing regions, or results of earlier ops);
    - no value is defined twice;
    - every op name is registered (unless [strict] is [false]);
    - each registered op's own [verify] hook passes. *)

type error = { func : string; op : string; message : string }

val error_to_string : error -> string

val verify_func : ?strict:bool -> Func_ir.func -> (unit, error) result
val verify_module : ?strict:bool -> Func_ir.modul -> (unit, error) result

val verify_exn : ?strict:bool -> Func_ir.modul -> unit
(** @raise Failure with a formatted message on the first error. *)
