type error = { func : string; op : string; message : string }

let error_to_string e =
  Printf.sprintf "verification failed in @%s at %s: %s" e.func e.op e.message

exception Fail of error

let verify_func ?(strict = true) (fn : Func_ir.func) =
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let err op message = raise (Fail { func = fn.fn_name; op; message }) in
  let define op_name (v : Value.t) =
    if Hashtbl.mem defined v.id then
      err op_name (Printf.sprintf "value %s defined twice" (Value.name v));
    Hashtbl.replace defined v.id ()
  in
  (* Region-local definitions go out of scope when the region ends;
     [scoped] runs [f] and removes everything it defined. *)
  let scoped f =
    let before = Hashtbl.copy defined in
    f ();
    Hashtbl.reset defined;
    Hashtbl.iter (fun k v -> Hashtbl.replace defined k v) before
  in
  let rec check_block op_name (b : Op.block) =
    List.iter (define op_name) b.block_args;
    List.iter check_op b.body
  and check_op (op : Op.t) =
    List.iter
      (fun (v : Value.t) ->
        if not (Hashtbl.mem defined v.id) then
          err op.op_name
            (Printf.sprintf "operand %s used before definition"
               (Value.name v)))
      op.operands;
    (match Registry.lookup op.op_name with
    | Some info -> (
        match info.verify op with
        | Ok () -> ()
        | Error m -> err op.op_name m)
    | None -> if strict then err op.op_name "op not registered");
    List.iter
      (fun (r : Op.region) ->
        scoped (fun () -> List.iter (check_block op.op_name) r.blocks))
      op.regions;
    (* Results come into scope after the op's regions: region code must
       not refer to the op's own results. *)
    List.iter (define op.op_name) op.results
  in
  try
    List.iter (define "entry") fn.fn_args;
    List.iter check_op fn.fn_body.body;
    Ok ()
  with Fail e -> Error e

let verify_module ?strict (m : Func_ir.modul) =
  let rec go = function
    | [] -> Ok ()
    | f :: rest -> (
        match verify_func ?strict f with
        | Ok () -> go rest
        | Error e -> Error e)
  in
  go m.funcs

let verify_exn ?strict m =
  match verify_module ?strict m with
  | Ok () -> ()
  | Error e -> failwith (error_to_string e)
