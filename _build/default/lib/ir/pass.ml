type t = { pass_name : string; run : Func_ir.modul -> Func_ir.modul }

exception Pass_error of string * string

let make pass_name run = { pass_name; run }
let fail ~pass msg = raise (Pass_error (pass, msg))

let run ?(verify = true) pass m =
  let m' = pass.run m in
  if verify then (
    match Verifier.verify_module ~strict:false m' with
    | Ok () -> ()
    | Error e ->
        raise (Pass_error (pass.pass_name, Verifier.error_to_string e)));
  m'

let run_pipeline ?verify passes m =
  List.fold_left (fun m pass -> run ?verify pass m) m passes

type trace_entry = { after_pass : string; ir_text : string }

let run_pipeline_traced ?verify passes m =
  let trace = ref [] in
  let m' =
    List.fold_left
      (fun m pass ->
        let m' = run ?verify pass m in
        trace :=
          { after_pass = pass.pass_name;
            ir_text = Printer.module_to_string m' }
          :: !trace;
        m')
      m passes
  in
  (m', List.rev !trace)
