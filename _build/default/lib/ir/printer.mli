(** Textual form of the IR (a generic-form MLIR-like syntax).

    The output of {!module_to_string} round-trips through
    {!Parser.parse_module}. *)

val float_to_string : float -> string
(** Print a float so that [float_of_string] recovers it exactly and so
    that it is lexically distinct from an integer. *)

val op_to_string : ?indent:int -> Op.t -> string
val func_to_string : Func_ir.func -> string
val module_to_string : Func_ir.modul -> string
val pp_module : Format.formatter -> Func_ir.modul -> unit
