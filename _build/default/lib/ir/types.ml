type elem = F32 | F64 | I1 | I32 | I64

type t =
  | Scalar of elem
  | Index
  | Tensor of int list * elem
  | Memref of int list * elem
  | Handle of string
  | None_type

let equal_elem (a : elem) (b : elem) = a = b

let equal (a : t) (b : t) =
  match (a, b) with
  | Scalar x, Scalar y -> equal_elem x y
  | Index, Index -> true
  | Tensor (s1, e1), Tensor (s2, e2) -> s1 = s2 && equal_elem e1 e2
  | Memref (s1, e1), Memref (s2, e2) -> s1 = s2 && equal_elem e1 e2
  | Handle h1, Handle h2 -> String.equal h1 h2
  | None_type, None_type -> true
  | (Scalar _ | Index | Tensor _ | Memref _ | Handle _ | None_type), _ ->
      false

let elem_to_string = function
  | F32 -> "f32"
  | F64 -> "f64"
  | I1 -> "i1"
  | I32 -> "i32"
  | I64 -> "i64"

let elem_of_string = function
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "i1" -> Some I1
  | "i32" -> Some I32
  | "i64" -> Some I64
  | _ -> None

let shape_to_string shape =
  String.concat "" (List.map (fun d -> string_of_int d ^ "x") shape)

let to_string = function
  | Scalar e -> elem_to_string e
  | Index -> "index"
  | Tensor (s, e) ->
      Printf.sprintf "tensor<%s%s>" (shape_to_string s) (elem_to_string e)
  | Memref (s, e) ->
      Printf.sprintf "memref<%s%s>" (shape_to_string s) (elem_to_string e)
  | Handle h -> "!" ^ h
  | None_type -> "none"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let tensor shape e = Tensor (shape, e)
let memref shape e = Memref (shape, e)

let shape = function
  | Tensor (s, _) | Memref (s, _) -> s
  | (Scalar _ | Index | Handle _ | None_type) as t ->
      invalid_arg ("Types.shape: not a shaped type: " ^ to_string t)

let element = function
  | Tensor (_, e) | Memref (_, e) | Scalar e -> e
  | (Index | Handle _ | None_type) as t ->
      invalid_arg ("Types.element: no element type: " ^ to_string t)

let num_elements = function
  | Tensor (s, _) | Memref (s, _) -> List.fold_left ( * ) 1 s
  | Scalar _ | Index -> 1
  | (Handle _ | None_type) as t ->
      invalid_arg ("Types.num_elements: " ^ to_string t)

let is_shaped = function
  | Tensor _ | Memref _ -> true
  | Scalar _ | Index | Handle _ | None_type -> false

let with_shape t shape =
  match t with
  | Tensor (_, e) -> Tensor (shape, e)
  | Memref (_, e) -> Memref (shape, e)
  | (Scalar _ | Index | Handle _ | None_type) as t ->
      invalid_arg ("Types.with_shape: not a shaped type: " ^ to_string t)
