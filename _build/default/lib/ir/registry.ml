type op_info = {
  summary : string;
  verify : Op.t -> (unit, string) result;
}

let dialects : (string, unit) Hashtbl.t = Hashtbl.create 8
let ops : (string, op_info) Hashtbl.t = Hashtbl.create 64

let register_dialect name = Hashtbl.replace dialects name ()

let register_op ~dialect ~mnemonic ?(summary = "")
    ?(verify = fun _ -> Ok ()) () =
  register_dialect dialect;
  Hashtbl.replace ops (dialect ^ "." ^ mnemonic) { summary; verify }

let dialect_registered name = Hashtbl.mem dialects name
let lookup name = Hashtbl.find_opt ops name

let registered_ops () =
  Hashtbl.fold (fun k _ acc -> k :: acc) ops [] |> List.sort compare

let clear () =
  Hashtbl.reset dialects;
  Hashtbl.reset ops
