let rec iter_op f (op : Op.t) =
  f op;
  List.iter
    (fun (r : Op.region) ->
      List.iter
        (fun (b : Op.block) -> List.iter (iter_op f) b.body)
        r.blocks)
    op.regions

let iter_ops f (fn : Func_ir.func) = List.iter (iter_op f) fn.fn_body.body
let iter_module f (m : Func_ir.modul) = List.iter (iter_ops f) m.funcs

let collect pred fn =
  let acc = ref [] in
  iter_ops (fun op -> if pred op then acc := op :: !acc) fn;
  List.rev !acc

let collect_module pred m =
  let acc = ref [] in
  iter_module (fun op -> if pred op then acc := op :: !acc) m;
  List.rev !acc

let map_block_ops f (b : Op.block) = b.body <- List.concat_map f b.body

let map_top_ops f (fn : Func_ir.func) =
  map_block_ops f fn.fn_body;
  fn

let find_def fn v =
  let found = ref None in
  iter_ops
    (fun op ->
      if !found = None && List.exists (Value.equal v) op.results then
        found := Some op)
    fn;
  !found

let used_values (op : Op.t) =
  let defined = Hashtbl.create 16 in
  let used = ref [] in
  let rec go (o : Op.t) =
    List.iter (fun v -> used := v :: !used) o.operands;
    List.iter (fun (v : Value.t) -> Hashtbl.replace defined v.id ()) o.results;
    List.iter
      (fun (r : Op.region) ->
        List.iter
          (fun (b : Op.block) ->
            List.iter
              (fun (v : Value.t) -> Hashtbl.replace defined v.id ())
              b.block_args;
            List.iter go b.body)
          r.blocks)
      o.regions
  in
  go op;
  (* Free values: used but not defined inside this op. The op's own
     results are defined, so they are excluded as well. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (v : Value.t) ->
      if Hashtbl.mem defined v.id || Hashtbl.mem seen v.id then false
      else (
        Hashtbl.replace seen v.id ();
        true))
    (List.rev !used)
