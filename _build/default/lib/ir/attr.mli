(** Compile-time attributes attached to IR operations. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string  (** quoted string payload *)
  | Sym of string  (** bare keyword, e.g. match kinds [exact], [best] *)
  | Ints of int list
  | Type_attr of Types.t

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Accessors raising [Invalid_argument] on kind mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_str : t -> string
val as_sym : t -> string
val as_ints : t -> int list
val as_type : t -> Types.t

val find : (string * t) list -> string -> t option
val get : (string * t) list -> string -> t
(** @raise Not_found when the key is absent. *)
