type t = { id : int; ty : Types.t }

let counter = ref 0

let fresh ty =
  let id = !counter in
  incr counter;
  { id; ty }

let with_id id ty =
  if id >= !counter then counter := id + 1;
  { id; ty }

let equal a b = a.id = b.id
let name v = "%" ^ string_of_int v.id
let pp fmt v = Format.pp_print_string fmt (name v)
let reset_counter () = counter := 0
