type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Sym of string
  | Ints of int list
  | Type_attr of Types.t

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Sym x, Sym y -> String.equal x y
  | Ints x, Ints y -> x = y
  | Type_attr x, Type_attr y -> Types.equal x y
  | (Int _ | Float _ | Bool _ | Str _ | Sym _ | Ints _ | Type_attr _), _ ->
      false

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%h" f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "%S" s
  | Sym s -> "#" ^ s
  | Ints l -> "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"
  | Type_attr t -> Types.to_string t

let pp fmt t = Format.pp_print_string fmt (to_string t)

let as_int = function Int i -> i | a -> invalid_arg ("as_int: " ^ to_string a)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | a -> invalid_arg ("as_float: " ^ to_string a)

let as_bool = function
  | Bool b -> b
  | a -> invalid_arg ("as_bool: " ^ to_string a)

let as_str = function
  | Str s -> s
  | a -> invalid_arg ("as_str: " ^ to_string a)

let as_sym = function
  | Sym s -> s
  | a -> invalid_arg ("as_sym: " ^ to_string a)

let as_ints = function
  | Ints l -> l
  | a -> invalid_arg ("as_ints: " ^ to_string a)

let as_type = function
  | Type_attr t -> t
  | a -> invalid_arg ("as_type: " ^ to_string a)

let find attrs key = List.assoc_opt key attrs
let get attrs key = List.assoc key attrs
