type token =
  | IDENT of string
  | VALUE of int
  | AT_IDENT of string
  | SYM of string
  | BANG_TYPE of string
  | SHAPED_TYPE of string * string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUAL
  | ARROW
  | CARET
  | EOF

exception Lex_error of string * int

let token_to_string = function
  | IDENT s -> s
  | VALUE i -> "%" ^ string_of_int i
  | AT_IDENT s -> "@" ^ s
  | SYM s -> "#" ^ s
  | BANG_TYPE s -> "!" ^ s
  | SHAPED_TYPE (k, s) -> k ^ "<" ^ s ^ ">"
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | EQUAL -> "="
  | ARROW -> "->"
  | CARET -> "^"
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let read_ident () =
    let start = !pos in
    while !pos < n && is_ident_char src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  let read_number () =
    let start = !pos in
    if !pos < n && src.[!pos] = '-' then incr pos;
    while
      !pos < n
      && (is_digit src.[!pos]
         || src.[!pos] = '.'
         || src.[!pos] = 'e'
         || src.[!pos] = 'E'
         || ((src.[!pos] = '+' || src.[!pos] = '-')
            && !pos > start
            && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
    do
      incr pos
    done;
    let s = String.sub src start (!pos - start) in
    (* "inf"/"nan" continuations like "-inf" are handled here too. *)
    if !pos < n && is_ident_start src.[!pos] && s = "-" then (
      let id = read_ident () in
      match id with
      | "inf" -> FLOAT Float.neg_infinity
      | _ -> raise (Lex_error ("bad number: -" ^ id, start)))
    else
      match int_of_string_opt s with
      | Some i -> INT i
      | None -> (
          match float_of_string_opt s with
          | Some f -> FLOAT f
          | None -> raise (Lex_error ("bad number: " ^ s, start)))
  in
  let read_string () =
    (* Called with src.[!pos] = '"'. Uses OCaml-style escapes. *)
    let buf = Buffer.create 16 in
    incr pos;
    let rec go () =
      if !pos >= n then raise (Lex_error ("unterminated string", !pos));
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' -> (
          incr pos;
          if !pos >= n then raise (Lex_error ("bad escape", !pos));
          let c = src.[!pos] in
          incr pos;
          (match c with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | '0' .. '9' ->
              (* decimal escape \DDD *)
              if !pos + 1 < n then (
                let code =
                  int_of_string
                    (String.init 3 (fun i -> src.[!pos - 1 + i]))
                in
                pos := !pos + 2;
                Buffer.add_char buf (Char.chr code))
              else raise (Lex_error ("bad escape", !pos))
          | c -> raise (Lex_error (Printf.sprintf "bad escape \\%c" c, !pos)));
          go ())
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then (
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done)
    else if c = '(' then (
      emit LPAREN;
      incr pos)
    else if c = ')' then (
      emit RPAREN;
      incr pos)
    else if c = '{' then (
      emit LBRACE;
      incr pos)
    else if c = '}' then (
      emit RBRACE;
      incr pos)
    else if c = '[' then (
      emit LBRACKET;
      incr pos)
    else if c = ']' then (
      emit RBRACKET;
      incr pos)
    else if c = ',' then (
      emit COMMA;
      incr pos)
    else if c = ':' then (
      emit COLON;
      incr pos)
    else if c = '=' then (
      emit EQUAL;
      incr pos)
    else if c = '^' then (
      emit CARET;
      incr pos)
    else if c = '%' then (
      incr pos;
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      if !pos = start then raise (Lex_error ("expected value id after %", !pos));
      emit (VALUE (int_of_string (String.sub src start (!pos - start)))))
    else if c = '@' then (
      incr pos;
      emit (AT_IDENT (read_ident ())))
    else if c = '#' then (
      incr pos;
      emit (SYM (read_ident ())))
    else if c = '!' then (
      incr pos;
      emit (BANG_TYPE (read_ident ())))
    else if c = '"' then emit (STRING (read_string ()))
    else if c = '-' then
      if peek 1 = Some '>' then (
        emit ARROW;
        pos := !pos + 2)
      else emit (read_number ())
    else if is_digit c then emit (read_number ())
    else if is_ident_start c then (
      let id = read_ident () in
      (* tensor<...> / memref<...> are lexed as one token because the
         shape syntax 10x8xf32 is not otherwise tokenizable. *)
      if (id = "tensor" || id = "memref") && peek 0 = Some '<' then (
        incr pos;
        let start = !pos in
        while !pos < n && src.[!pos] <> '>' do
          incr pos
        done;
        if !pos >= n then raise (Lex_error ("unterminated type", start));
        let body = String.sub src start (!pos - start) in
        incr pos;
        emit (SHAPED_TYPE (id, body)))
      else
        match id with
        | "inf" -> emit (FLOAT Float.infinity)
        | "nan" -> emit (FLOAT Float.nan)
        | _ -> emit (IDENT id))
    else raise (Lex_error (Printf.sprintf "unexpected character %c" c, !pos))
  done;
  emit EOF;
  Array.of_list (List.rev !toks)
