lib/ir/func_ir.mli: Op Types Value
