lib/ir/rewriter.ml: Array List Op Option String Value
