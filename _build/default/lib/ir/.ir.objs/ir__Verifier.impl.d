lib/ir/verifier.ml: Func_ir Hashtbl List Op Printf Registry Value
