lib/ir/pass.mli: Func_ir
