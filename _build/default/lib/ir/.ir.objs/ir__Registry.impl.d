lib/ir/registry.ml: Hashtbl List Op
