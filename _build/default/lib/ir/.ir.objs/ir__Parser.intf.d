lib/ir/parser.mli: Func_ir Types
