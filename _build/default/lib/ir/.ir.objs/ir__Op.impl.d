lib/ir/op.ml: Attr List Printf String Value
