lib/ir/parser.ml: Array Attr Func_ir Hashtbl Lexer List Op Printf String Types Value
