lib/ir/lexer.mli:
