lib/ir/walk.ml: Func_ir Hashtbl List Op Value
