lib/ir/printer.mli: Format Func_ir Op
