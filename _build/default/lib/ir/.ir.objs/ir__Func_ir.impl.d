lib/ir/func_ir.ml: List Op String Types Value
