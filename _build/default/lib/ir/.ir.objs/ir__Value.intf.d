lib/ir/value.mli: Format Types
