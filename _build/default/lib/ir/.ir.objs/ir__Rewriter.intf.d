lib/ir/rewriter.mli: Op
