lib/ir/attr.ml: Format List Printf String Types
