lib/ir/value.ml: Format Types
