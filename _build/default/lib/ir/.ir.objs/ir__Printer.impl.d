lib/ir/printer.ml: Attr Float Format Func_ir List Op Printf String Types Value
