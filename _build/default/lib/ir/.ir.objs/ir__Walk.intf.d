lib/ir/walk.mli: Func_ir Op Value
