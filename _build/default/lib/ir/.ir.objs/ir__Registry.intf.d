lib/ir/registry.mli: Op
