lib/ir/pass.ml: Func_ir List Printer Verifier
