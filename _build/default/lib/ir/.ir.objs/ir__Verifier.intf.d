lib/ir/verifier.mli: Func_ir
