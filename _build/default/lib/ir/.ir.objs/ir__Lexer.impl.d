lib/ir/lexer.ml: Array Buffer Char Float List Printf String
