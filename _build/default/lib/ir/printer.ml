let float_to_string f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let attr_to_string = function
  | Attr.Int i -> string_of_int i
  | Attr.Float f -> float_to_string f
  | Attr.Bool b -> string_of_bool b
  | Attr.Str s -> Printf.sprintf "%S" s
  | Attr.Sym s -> "#" ^ s
  | Attr.Ints l -> "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"
  | Attr.Type_attr t -> Types.to_string t

let attrs_to_string attrs =
  if attrs = [] then ""
  else
    " {"
    ^ String.concat ", "
        (List.map (fun (k, v) -> k ^ " = " ^ attr_to_string v) attrs)
    ^ "}"

let values_to_string vs = String.concat ", " (List.map Value.name vs)

let type_list_to_string = function
  | [] -> "()"
  | [ t ] -> Types.to_string t
  | ts -> "(" ^ String.concat ", " (List.map Types.to_string ts) ^ ")"

let pad n = String.make n ' '

let rec op_to_string ?(indent = 0) (op : Op.t) =
  let ind = pad indent in
  let results =
    match op.results with [] -> "" | vs -> values_to_string vs ^ " = "
  in
  let operand_types =
    "("
    ^ String.concat ", "
        (List.map (fun (v : Value.t) -> Types.to_string v.ty) op.operands)
    ^ ")"
  in
  let result_types =
    type_list_to_string (List.map (fun (v : Value.t) -> v.ty) op.results)
  in
  let regions =
    if op.regions = [] then ""
    else
      " ("
      ^ String.concat ", "
          (List.map (region_to_string ~indent:(indent + 2)) op.regions)
      ^ ")"
  in
  Printf.sprintf "%s%s\"%s\"(%s)%s%s : %s -> %s" ind results op.op_name
    (values_to_string op.operands)
    (attrs_to_string op.attrs)
    regions operand_types result_types

and region_to_string ~indent (r : Op.region) =
  match r.blocks with
  | [ b ] -> block_to_string ~indent b
  | _ -> invalid_arg "Printer: only single-block regions are printable"

and block_to_string ~indent (b : Op.block) =
  let header =
    if b.block_args = [] then ""
    else
      pad indent ^ "^("
      ^ String.concat ", "
          (List.map
             (fun (v : Value.t) ->
               Value.name v ^ ": " ^ Types.to_string v.ty)
             b.block_args)
      ^ "):\n"
  in
  let body =
    String.concat "\n" (List.map (op_to_string ~indent) b.body)
  in
  "{\n" ^ header ^ body
  ^ (if b.body = [] then "" else "\n")
  ^ pad (indent - 2)
  ^ "}"

let func_to_string (f : Func_ir.func) =
  let args =
    String.concat ", "
      (List.map
         (fun (v : Value.t) -> Value.name v ^ ": " ^ Types.to_string v.ty)
         f.fn_args)
  in
  let ret =
    match f.fn_ret with
    | [] -> ""
    | ts -> " -> " ^ type_list_to_string ts
  in
  Printf.sprintf "func @%s(%s)%s {\n%s\n}" f.fn_name args ret
    (String.concat "\n"
       (List.map (op_to_string ~indent:2) f.fn_body.body))

let module_to_string (m : Func_ir.modul) =
  String.concat "\n\n" (List.map func_to_string m.funcs) ^ "\n"

let pp_module fmt m = Format.pp_print_string fmt (module_to_string m)
