(** SSA values. Each value has a unique integer id and a type. *)

type t = { id : int; ty : Types.t }

val fresh : Types.t -> t
(** Create a value with a globally fresh id. *)

val with_id : int -> Types.t -> t
(** Create a value with an explicit id (used by the parser). Advances the
    global counter past [id] so later {!fresh} calls stay unique. *)

val equal : t -> t -> bool
(** Identity: two values are equal iff their ids are equal. *)

val name : t -> string
(** Printable name, ["%<id>"]. *)

val pp : Format.formatter -> t -> unit

val reset_counter : unit -> unit
(** Reset the global id counter. Only for tests needing determinism. *)
