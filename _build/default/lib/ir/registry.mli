(** Dialect and operation registry.

    Dialect libraries register their ops here; the {!Verifier} consults
    the registry to check op well-formedness. *)

type op_info = {
  summary : string;
  verify : Op.t -> (unit, string) result;
}

val register_dialect : string -> unit
(** Idempotent. *)

val register_op :
  dialect:string ->
  mnemonic:string ->
  ?summary:string ->
  ?verify:(Op.t -> (unit, string) result) ->
  unit ->
  unit
(** Registers ["dialect.mnemonic"]. Re-registration replaces the entry
    (dialect modules may be initialised more than once). *)

val dialect_registered : string -> bool
val lookup : string -> op_info option
(** Look up a fully-qualified op name. *)

val registered_ops : unit -> string list
(** Sorted list of all registered op names. *)

val clear : unit -> unit
(** Tests only. *)
