(** Parser for the textual IR form produced by {!Printer}. *)

exception Parse_error of string

val parse_type : string -> Types.t
(** Parse a single type, e.g. ["tensor<10x8192xf32>"].
    @raise Parse_error on malformed input. *)

val parse_module : string -> Func_ir.modul
(** @raise Parse_error on malformed input. Only single-block regions are
    supported (the printer never emits anything else). *)
