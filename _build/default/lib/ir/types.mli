(** Types of SSA values in the C4CAM intermediate representation.

    The type system is a small subset of MLIR's builtin types plus opaque
    dialect handle types (printed [!dialect.name]), which model device
    handles such as [!cam.bank_id]. *)

type elem =
  | F32
  | F64
  | I1
  | I32
  | I64
      (** Element types of tensors and memrefs, and of scalar values. *)

type t =
  | Scalar of elem  (** a plain scalar such as [f32] or [i1] *)
  | Index  (** loop induction variables and sizes *)
  | Tensor of int list * elem  (** immutable value-semantics tensor *)
  | Memref of int list * elem  (** mutable buffer with static shape *)
  | Handle of string  (** opaque dialect handle, e.g. ["cam.bank_id"] *)
  | None_type  (** used by ops returning nothing useful *)

val equal_elem : elem -> elem -> bool
val equal : t -> t -> bool

val elem_to_string : elem -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val elem_of_string : string -> elem option
(** Inverse of {!elem_to_string}. *)

val tensor : int list -> elem -> t
val memref : int list -> elem -> t

val shape : t -> int list
(** Shape of a tensor or memref. @raise Invalid_argument otherwise. *)

val element : t -> elem
(** Element type of a scalar, tensor or memref.
    @raise Invalid_argument otherwise. *)

val num_elements : t -> int
(** Product of the shape dims of a tensor/memref; 1 for scalars. *)

val is_shaped : t -> bool
(** [true] for tensors and memrefs. *)

val with_shape : t -> int list -> t
(** Replace the shape of a shaped type, keeping kind and element type. *)
