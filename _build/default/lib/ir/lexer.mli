(** Lexer for the textual IR form. *)

type token =
  | IDENT of string  (** bare identifiers and keywords, e.g. [func] *)
  | VALUE of int  (** [%12] *)
  | AT_IDENT of string  (** [@forward] *)
  | SYM of string  (** [#exact] *)
  | BANG_TYPE of string  (** [!cam.bank_id] (payload without the bang) *)
  | SHAPED_TYPE of string * string
      (** [tensor<10x8xf32>] as [("tensor", "10x8xf32")] *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUAL
  | ARROW
  | CARET
  | EOF

exception Lex_error of string * int
(** Message and character offset. *)

val token_to_string : token -> string

val tokenize : string -> token array
(** @raise Lex_error on invalid input. Comments run from [//] to end of
    line. *)
