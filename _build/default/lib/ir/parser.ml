exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = {
  toks : Lexer.token array;
  mutable cur : int;
  env : (int, Value.t) Hashtbl.t;
}

let peek st = st.toks.(st.cur)
let advance st = st.cur <- st.cur + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    fail "expected %s, got %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string t)

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> fail "expected identifier, got %s" (Lexer.token_to_string t)

let shaped_of_body kind body =
  let parts = String.split_on_char 'x' body in
  match List.rev parts with
  | elem :: dims_rev -> (
      match Types.elem_of_string elem with
      | None -> fail "bad element type %s in %s<%s>" elem kind body
      | Some e ->
          let dims =
            List.rev_map
              (fun d ->
                match int_of_string_opt d with
                | Some i -> i
                | None -> fail "bad dimension %s in %s<%s>" d kind body)
              dims_rev
          in
          if kind = "tensor" then Types.Tensor (dims, e)
          else Types.Memref (dims, e))
  | [] -> fail "empty shaped type"

let type_of_token = function
  | Lexer.SHAPED_TYPE (kind, body) -> shaped_of_body kind body
  | Lexer.BANG_TYPE h -> Types.Handle h
  | Lexer.IDENT "index" -> Types.Index
  | Lexer.IDENT "none" -> Types.None_type
  | Lexer.IDENT s -> (
      match Types.elem_of_string s with
      | Some e -> Types.Scalar e
      | None -> fail "unknown type %s" s)
  | t -> fail "expected a type, got %s" (Lexer.token_to_string t)

let parse_type_tok st = type_of_token (next st)

(* A type list is either "()" (empty), a single type, or "(T, T, ...)". *)
let parse_type_list st =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      if peek st = Lexer.RPAREN then (
        advance st;
        [])
      else
        let rec go acc =
          let t = parse_type_tok st in
          match next st with
          | Lexer.COMMA -> go (t :: acc)
          | Lexer.RPAREN -> List.rev (t :: acc)
          | tok ->
              fail "expected , or ) in type list, got %s"
                (Lexer.token_to_string tok)
        in
        go []
  | _ -> [ parse_type_tok st ]

let parse_value_ids st =
  (* Comma-separated %N names; returns the raw ids. *)
  let rec go acc =
    match peek st with
    | Lexer.VALUE id -> (
        advance st;
        match peek st with
        | Lexer.COMMA ->
            advance st;
            go (id :: acc)
        | _ -> List.rev (id :: acc))
    | _ -> List.rev acc
  in
  go []

let lookup st id =
  match Hashtbl.find_opt st.env id with
  | Some v -> v
  | None -> fail "use of undefined value %%%d" id

let define st (v : Value.t) = Hashtbl.replace st.env v.id v

let parse_attr st =
  match next st with
  | Lexer.INT i -> Attr.Int i
  | Lexer.FLOAT f -> Attr.Float f
  | Lexer.STRING s -> Attr.Str s
  | Lexer.SYM s -> Attr.Sym s
  | Lexer.IDENT "true" -> Attr.Bool true
  | Lexer.IDENT "false" -> Attr.Bool false
  | Lexer.LBRACKET ->
      if peek st = Lexer.RBRACKET then (
        advance st;
        Attr.Ints [])
      else
        let rec go acc =
          match next st with
          | Lexer.INT i -> (
              match next st with
              | Lexer.COMMA -> go (i :: acc)
              | Lexer.RBRACKET -> List.rev (i :: acc)
              | t -> fail "bad int list: %s" (Lexer.token_to_string t))
          | t -> fail "bad int list element: %s" (Lexer.token_to_string t)
        in
        Attr.Ints (go [])
  | (Lexer.SHAPED_TYPE _ | Lexer.BANG_TYPE _) as t ->
      Attr.Type_attr (type_of_token t)
  | Lexer.IDENT s -> (
      match Types.elem_of_string s with
      | Some e -> Attr.Type_attr (Types.Scalar e)
      | None ->
          if s = "index" then Attr.Type_attr Types.Index
          else fail "unknown attribute value %s" s)
  | t -> fail "expected attribute value, got %s" (Lexer.token_to_string t)

let parse_attrs st =
  expect st Lexer.LBRACE;
  if peek st = Lexer.RBRACE then (
    advance st;
    [])
  else
    let rec go acc =
      let key = expect_ident st in
      expect st Lexer.EQUAL;
      let v = parse_attr st in
      match next st with
      | Lexer.COMMA -> go ((key, v) :: acc)
      | Lexer.RBRACE -> List.rev ((key, v) :: acc)
      | t -> fail "expected , or } in attributes, got %s"
               (Lexer.token_to_string t)
    in
    go []

let rec parse_op st : Op.t =
  let result_ids =
    match peek st with
    | Lexer.VALUE _ ->
        let ids = parse_value_ids st in
        expect st Lexer.EQUAL;
        ids
    | _ -> []
  in
  let name =
    match next st with
    | Lexer.STRING s -> s
    | t -> fail "expected op name string, got %s" (Lexer.token_to_string t)
  in
  expect st Lexer.LPAREN;
  let operand_ids =
    if peek st = Lexer.RPAREN then []
    else parse_value_ids st
  in
  expect st Lexer.RPAREN;
  let operands = List.map (lookup st) operand_ids in
  let attrs = if peek st = Lexer.LBRACE then parse_attrs st else [] in
  let regions =
    if peek st = Lexer.LPAREN then (
      advance st;
      let rec go acc =
        let r = parse_region st in
        match next st with
        | Lexer.COMMA -> go (r :: acc)
        | Lexer.RPAREN -> List.rev (r :: acc)
        | t -> fail "expected , or ) after region, got %s"
                 (Lexer.token_to_string t)
      in
      go [])
    else []
  in
  expect st Lexer.COLON;
  let operand_tys = parse_type_list st in
  expect st Lexer.ARROW;
  let result_tys = parse_type_list st in
  if List.length operand_tys <> List.length operands then
    fail "op %s: %d operands but %d operand types" name
      (List.length operands) (List.length operand_tys);
  List.iter2
    (fun (v : Value.t) ty ->
      if not (Types.equal v.ty ty) then
        fail "op %s: operand %s has type %s, annotation says %s" name
          (Value.name v) (Types.to_string v.ty) (Types.to_string ty))
    operands operand_tys;
  if List.length result_ids <> List.length result_tys then
    fail "op %s: %d results but %d result types" name
      (List.length result_ids) (List.length result_tys);
  let results =
    List.map2
      (fun id ty ->
        let v = Value.with_id id ty in
        define st v;
        v)
      result_ids result_tys
  in
  Op.create ~operands ~results ~attrs ~regions name

and parse_region st : Op.region =
  expect st Lexer.LBRACE;
  let args =
    if peek st = Lexer.CARET then (
      advance st;
      expect st Lexer.LPAREN;
      let rec go acc =
        match next st with
        | Lexer.VALUE id -> (
            expect st Lexer.COLON;
            let ty = parse_type_tok st in
            let v = Value.with_id id ty in
            define st v;
            match next st with
            | Lexer.COMMA -> go (v :: acc)
            | Lexer.RPAREN -> List.rev (v :: acc)
            | t -> fail "bad block arg list: %s" (Lexer.token_to_string t))
        | Lexer.RPAREN -> List.rev acc
        | t -> fail "bad block arg: %s" (Lexer.token_to_string t)
      in
      let args = go [] in
      expect st Lexer.COLON;
      args)
    else []
  in
  let rec ops acc =
    match peek st with
    | Lexer.RBRACE ->
        advance st;
        List.rev acc
    | _ -> ops (parse_op st :: acc)
  in
  let body = ops [] in
  { Op.blocks = [ { Op.body; block_args = args } ] }

let parse_func st : Func_ir.func =
  (match next st with
  | Lexer.IDENT "func" -> ()
  | t -> fail "expected 'func', got %s" (Lexer.token_to_string t));
  let name =
    match next st with
    | Lexer.AT_IDENT s -> s
    | t -> fail "expected @name, got %s" (Lexer.token_to_string t)
  in
  expect st Lexer.LPAREN;
  let rec go acc =
    match next st with
    | Lexer.VALUE id -> (
        expect st Lexer.COLON;
        let ty = parse_type_tok st in
        let v = Value.with_id id ty in
        define st v;
        match next st with
        | Lexer.COMMA -> go (v :: acc)
        | Lexer.RPAREN -> List.rev (v :: acc)
        | t -> fail "bad parameter list: %s" (Lexer.token_to_string t))
    | Lexer.RPAREN -> List.rev acc
    | t -> fail "bad parameter: %s" (Lexer.token_to_string t)
  in
  let args = go [] in
  let ret =
    if peek st = Lexer.ARROW then (
      advance st;
      parse_type_list st)
    else []
  in
  expect st Lexer.LBRACE;
  let rec ops acc =
    match peek st with
    | Lexer.RBRACE ->
        advance st;
        List.rev acc
    | _ -> ops (parse_op st :: acc)
  in
  let body = ops [] in
  Func_ir.func name ~args ~ret body

let parse_type s =
  let toks =
    try Lexer.tokenize s
    with Lexer.Lex_error (msg, pos) -> fail "lex error at %d: %s" pos msg
  in
  let st = { toks; cur = 0; env = Hashtbl.create 4 } in
  let t = parse_type_tok st in
  expect st Lexer.EOF;
  t

let parse_module src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (msg, pos) -> fail "lex error at %d: %s" pos msg
  in
  let st = { toks; cur = 0; env = Hashtbl.create 64 } in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> go (parse_func st :: acc)
  in
  Func_ir.modul (go [])
