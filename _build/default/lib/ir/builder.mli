(** Convenience constructors for building IR imperatively.

    A builder accumulates ops in order; [finish] returns them. Result
    values are created fresh from the requested result types. *)

type t

val create : unit -> t

val add : t -> Op.t -> unit
(** Append an already-built op. *)

val op :
  t ->
  ?operands:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Types.t list ->
  Value.t list
(** [op b name result_types] appends a new op and returns its fresh
    result values. *)

val op1 :
  t ->
  ?operands:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Types.t ->
  Value.t
(** Like {!op} for single-result ops. *)

val op0 :
  t ->
  ?operands:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  unit
(** Like {!op} for zero-result ops. *)

val finish : t -> Op.t list

val build : (t -> unit) -> Op.t list
(** [build f] runs [f] on a fresh builder and returns the ops. *)
