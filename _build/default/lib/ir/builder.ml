type t = { mutable ops_rev : Op.t list }

let create () = { ops_rev = [] }
let add b op = b.ops_rev <- op :: b.ops_rev

let op b ?(operands = []) ?(attrs = []) ?(regions = []) name result_types =
  let results = List.map Value.fresh result_types in
  add b (Op.create ~operands ~results ~attrs ~regions name);
  results

let op1 b ?operands ?attrs ?regions name result_type =
  match op b ?operands ?attrs ?regions name [ result_type ] with
  | [ v ] -> v
  | _ -> assert false

let op0 b ?operands ?attrs ?regions name =
  match op b ?operands ?attrs ?regions name [] with
  | [] -> ()
  | _ -> assert false

let finish b = List.rev b.ops_rev

let build f =
  let b = create () in
  f b;
  finish b
