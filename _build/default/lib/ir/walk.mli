(** IR traversal helpers. *)

val iter_ops : (Op.t -> unit) -> Func_ir.func -> unit
(** Pre-order traversal over all ops of a function, including nested
    regions. *)

val iter_module : (Op.t -> unit) -> Func_ir.modul -> unit

val collect : (Op.t -> bool) -> Func_ir.func -> Op.t list
(** All ops (nested included) satisfying the predicate, pre-order. *)

val collect_module : (Op.t -> bool) -> Func_ir.modul -> Op.t list

val map_top_ops : (Op.t -> Op.t list) -> Func_ir.func -> Func_ir.func
(** Replace each top-level op of the function body by a list of ops
    (1-to-n rewriting at the top level only). The function is mutated and
    also returned for chaining. *)

val map_block_ops : (Op.t -> Op.t list) -> Op.block -> unit
(** Same rewriting applied to an arbitrary block. *)

val find_def : Func_ir.func -> Value.t -> Op.t option
(** Defining op of an SSA value, searching nested regions too. [None] for
    function/block arguments. *)

val used_values : Op.t -> Value.t list
(** Operands of the op plus of all nested ops, minus values defined
    inside (i.e. the free values of the op). *)
