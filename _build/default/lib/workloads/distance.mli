(** Reference distance metrics and top-k selection, used both by the
    software baselines and by the functional-accuracy tests. *)

val hamming : float array -> float array -> float
(** Number of unequal positions. @raise Invalid_argument on length
    mismatch. *)

val dot : float array -> float array -> float
val euclidean_sq : float array -> float array -> float
val euclidean : float array -> float array -> float
val norm2 : float array -> float
val cosine : float array -> float array -> float
(** Cosine similarity; 0 when either vector is all-zero. *)

val topk : ?largest:bool -> k:int -> float array -> (float * int) array
(** The [k] smallest (default) or largest entries as (value, index),
    ordered; ties break toward the lower index. *)

val argmin : float array -> int
val argmax : float array -> int
