type tree =
  | Leaf of int
  | Node of { feature : int; threshold : int; left : tree; right : tree }

type model = {
  tree : tree;
  bins : int;
  mins : float array;
  maxs : float array;
  n_classes : int;
}

(* ---- quantisation ------------------------------------------------------ *)

let quantize_value ~bins ~lo ~hi v =
  if hi <= lo then 0
  else
    let b = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int bins) in
    if b < 0 then 0 else if b >= bins then bins - 1 else b

let quantize model sample =
  Array.mapi
    (fun f v ->
      quantize_value ~bins:model.bins ~lo:model.mins.(f) ~hi:model.maxs.(f)
        v)
    sample

(* ---- CART training ------------------------------------------------------ *)

let gini counts total =
  if total = 0 then 0.
  else
    1.
    -. Array.fold_left
         (fun acc c ->
           let p = float_of_int c /. float_of_int total in
           acc +. (p *. p))
         0. counts

let majority counts =
  let best = ref 0 in
  Array.iteri (fun c v -> if v > counts.(!best) then best := c) counts;
  !best

let train ?(max_depth = 6) ?(min_samples = 4) ?(bins = 16)
    (ds : Dataset.t) =
  let n = Dataset.n_samples ds in
  if n = 0 then invalid_arg "Decision_tree.train: empty dataset";
  let n_features = Dataset.n_features ds in
  let mins = Array.make n_features Float.infinity in
  let maxs = Array.make n_features Float.neg_infinity in
  Array.iter
    (fun row ->
      Array.iteri
        (fun f v ->
          if v < mins.(f) then mins.(f) <- v;
          if v > maxs.(f) then maxs.(f) <- v)
        row)
    ds.features;
  let binned =
    Array.map
      (fun row ->
        Array.mapi
          (fun f v -> quantize_value ~bins ~lo:mins.(f) ~hi:maxs.(f) v)
          row)
      ds.features
  in
  let count_classes idxs =
    let counts = Array.make ds.n_classes 0 in
    List.iter (fun i -> counts.(ds.labels.(i)) <- counts.(ds.labels.(i)) + 1) idxs;
    counts
  in
  let rec grow idxs depth =
    let counts = count_classes idxs in
    let total = List.length idxs in
    let pure = Array.exists (fun c -> c = total) counts in
    if depth >= max_depth || total < min_samples || pure then
      Leaf (majority counts)
    else begin
      (* best (feature, threshold) by Gini gain *)
      let best = ref None in
      let parent_gini = gini counts total in
      for f = 0 to n_features - 1 do
        for t = 0 to bins - 2 do
          let lc = Array.make ds.n_classes 0 in
          let rc = Array.make ds.n_classes 0 in
          let ln = ref 0 and rn = ref 0 in
          List.iter
            (fun i ->
              if binned.(i).(f) <= t then begin
                lc.(ds.labels.(i)) <- lc.(ds.labels.(i)) + 1;
                incr ln
              end
              else begin
                rc.(ds.labels.(i)) <- rc.(ds.labels.(i)) + 1;
                incr rn
              end)
            idxs;
          if !ln > 0 && !rn > 0 then begin
            let w =
              (float_of_int !ln *. gini lc !ln
              +. float_of_int !rn *. gini rc !rn)
              /. float_of_int total
            in
            let gain = parent_gini -. w in
            match !best with
            | Some (g, _, _) when g >= gain -> ()
            | _ -> if gain > 1e-9 then best := Some (gain, f, t)
          end
        done
      done;
      match !best with
      | None -> Leaf (majority counts)
      | Some (_, f, t) ->
          let left_idx = List.filter (fun i -> binned.(i).(f) <= t) idxs in
          let right_idx = List.filter (fun i -> binned.(i).(f) > t) idxs in
          Node
            {
              feature = f;
              threshold = t;
              left = grow left_idx (depth + 1);
              right = grow right_idx (depth + 1);
            }
    end
  in
  let tree = grow (List.init n (fun i -> i)) 0 in
  { tree; bins; mins; maxs; n_classes = ds.n_classes }

let predict model sample =
  let binned = quantize model sample in
  let rec go = function
    | Leaf c -> c
    | Node { feature; threshold; left; right } ->
        if binned.(feature) <= threshold then go left else go right
  in
  go model.tree

let accuracy model (ds : Dataset.t) =
  let correct = ref 0 in
  Array.iteri
    (fun i row -> if predict model row = ds.labels.(i) then incr correct)
    ds.features;
  float_of_int !correct /. float_of_int (Dataset.n_samples ds)

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec n_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> n_leaves left + n_leaves right

(* ---- TCAM mapping -------------------------------------------------------- *)

type rules = {
  patterns : float array array;
  care : bool array array;
  classes : int array;
  width : int;
}

(* Thermometer bit j of feature f (j in 0..bins-2) says "bin(f) > j";
   it lives at cell f*(bins-1) + j. The condition bin <= t pins bit t to
   0; bin > t pins it to 1. *)
let to_rules model =
  let bits_per_feature = model.bins - 1 in
  let n_features = Array.length model.mins in
  let width = n_features * bits_per_feature in
  let rows = ref [] in
  let rec walk tree (constraints : (int * float) list) =
    match tree with
    | Leaf c ->
        let pattern = Array.make width 0. in
        let care = Array.make width false in
        List.iter
          (fun (cell, v) ->
            pattern.(cell) <- v;
            care.(cell) <- true)
          constraints;
        rows := (pattern, care, c) :: !rows
    | Node { feature; threshold; left; right } ->
        let cell = (feature * bits_per_feature) + threshold in
        walk left ((cell, 0.) :: constraints);
        walk right ((cell, 1.) :: constraints)
  in
  walk model.tree [];
  let rows = Array.of_list (List.rev !rows) in
  {
    patterns = Array.map (fun (p, _, _) -> p) rows;
    care = Array.map (fun (_, c, _) -> c) rows;
    classes = Array.map (fun (_, _, c) -> c) rows;
    width;
  }

let encode_query model sample =
  let bits_per_feature = model.bins - 1 in
  let binned = quantize model sample in
  let out = Array.make (Array.length sample * bits_per_feature) 0. in
  Array.iteri
    (fun f b ->
      for j = 0 to bits_per_feature - 1 do
        out.((f * bits_per_feature) + j) <- (if b > j then 1. else 0.)
      done)
    binned;
  out

let classify_cam sim sub rules model queries =
  let n_rules = Array.length rules.patterns in
  ignore
    (Camsim.Simulator.write_ternary sim sub ~row_offset:0 ~care:rules.care
       rules.patterns);
  let encoded = Array.map (encode_query model) queries in
  ignore
    (Camsim.Simulator.search sim sub ~queries:encoded ~row_offset:0
       ~rows:n_rules ~kind:`Exact ~metric:`Hamming ());
  let matches = Camsim.Simulator.read sim sub in
  Array.mapi
    (fun qi row ->
      let rec first i =
        if i >= Array.length row then
          failwith
            (Printf.sprintf "query %d matches no decision-tree rule" qi)
        else if row.(i) = 0. then rules.classes.(i)
        else first (i + 1)
      in
      first 0)
    matches
