(** Approximate genome pattern matching (the EDAM-style use case the
    paper cites: "edit distance tolerant approximate matching CAM").

    A reference DNA sequence is decomposed into overlapping k-mers,
    one per CAM row (bases one-hot encoded with 4 cells each, so a
    base mismatch costs Hamming distance 2). A threshold search returns
    every position whose k-mer lies within the mismatch budget of the
    query pattern — the CAM does in one cycle what a software scan does
    in O(sequence x k). *)

type base = A | C | G | T

type sequence = base array

val random_sequence : ?seed:int -> int -> sequence

val mutate : ?seed:int -> sequence -> rate:float -> sequence
(** Point-mutate each base with the given probability (to a different
    base). *)

val to_string : sequence -> string
val of_string : string -> sequence
(** @raise Invalid_argument on characters outside ACGT. *)

val encode : sequence -> float array
(** One-hot: 4 cells per base. *)

val kmers : sequence -> k:int -> sequence array
(** All overlapping windows, index [i] starting at position [i]. *)

val mismatches : sequence -> sequence -> int
(** Base-level Hamming distance. @raise Invalid_argument on length
    mismatch. *)

val scan_software : reference:sequence -> pattern:sequence ->
  max_mismatches:int -> int list
(** Naive software scan: positions whose window is within the budget. *)

type cam_index = {
  sim : Camsim.Simulator.t;
  sub : Camsim.Simulator.id;
  k : int;
  positions : int;  (** number of stored k-mers *)
}

val build_index :
  ?spec:Archspec.Spec.t -> reference:sequence -> k:int -> unit -> cam_index
(** Store every k-mer of the reference in one subarray (the reference
    must fit: positions <= rows, 4k <= cols). The default spec is sized
    to fit. *)

val scan_cam :
  cam_index -> pattern:sequence -> max_mismatches:int -> int list
(** Threshold search over the index; equals {!scan_software} on the
    same reference (tested). *)
