(** Few-shot / one-shot learning with a CAM episodic memory (the
    paper's motivating references [4] and [24]: FeFET TCAMs as key-value
    memories for memory-augmented networks).

    An "embedding network" (a fixed random projection with a sign
    non-linearity — the training-free binary embedding used in the
    one-shot TCAM literature) maps raw feature vectors to binary keys.
    Each episode writes the N x K support keys into a CAM and classifies
    queries by best-match search with majority voting over the K nearest
    keys. *)

type embedder

val embedder : ?seed:int -> in_dim:int -> out_dim:int -> unit -> embedder
(** Random signed projection, fixed across episodes. *)

val embed : embedder -> float array -> float array
(** Binary key in {0,1}^out_dim. *)

type episode = {
  support : float array array;  (** [n_way * k_shot] raw feature vectors *)
  support_labels : int array;
  queries : float array array;
  query_labels : int array;
}

val make_episode :
  ?seed:int -> ?noise:float -> n_way:int -> k_shot:int -> n_queries:int ->
  dim:int -> unit -> episode
(** Synthetic episode: [n_way] novel class prototypes; support and query
    samples are noisy copies. *)

val classify_software :
  embedder -> episode -> k:int -> int array
(** Majority vote over the [k] Hamming-nearest support keys. *)

val classify_cam :
  ?spec:Archspec.Spec.t -> embedder -> episode -> k:int ->
  int array * Camsim.Stats.t
(** Same protocol on the CAM: write the support keys once, best-match
    search all queries, vote. Matches {!classify_software} (tested). *)

val episode_accuracy : int array -> int array -> float
