let check_lengths a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Distance: length mismatch (%d vs %d)"
         (Array.length a) (Array.length b))

let hamming a b =
  check_lengths a b;
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    if Array.unsafe_get a i <> Array.unsafe_get b i then incr d
  done;
  float_of_int !d

let dot a b =
  check_lengths a b;
  let s = ref 0. in
  for i = 0 to Array.length a - 1 do
    s := !s +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !s

let euclidean_sq a b =
  check_lengths a b;
  let s = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = Array.unsafe_get a i -. Array.unsafe_get b i in
    s := !s +. (d *. d)
  done;
  !s

let euclidean a b = sqrt (euclidean_sq a b)
let norm2 a = sqrt (dot a a)

let cosine a b =
  let na = norm2 a and nb = norm2 b in
  if na = 0. || nb = 0. then 0. else dot a b /. (na *. nb)

let topk ?(largest = false) ~k values =
  let n = Array.length values in
  if k < 0 || k > n then invalid_arg "Distance.topk: bad k";
  let order = Array.init n (fun i -> i) in
  let cmp a b =
    let va = values.(a) and vb = values.(b) in
    let c = if largest then compare vb va else compare va vb in
    if c <> 0 then c else compare a b
  in
  Array.sort cmp order;
  Array.init k (fun j -> (values.(order.(j)), order.(j)))

let argmin values =
  match topk ~k:1 values with
  | [| (_, i) |] -> i
  | _ -> invalid_arg "Distance.argmin: empty array"

let argmax values =
  match topk ~largest:true ~k:1 values with
  | [| (_, i) |] -> i
  | _ -> invalid_arg "Distance.argmax: empty array"
