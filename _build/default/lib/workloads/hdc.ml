type config = { dims : int; levels : int; bits : int; seed : int }

let default_config = { dims = 8192; levels = 16; bits = 1; seed = 1 }

type item_memory = {
  base : int array array;  (** [n_features x dims], 0/1 *)
  level : int array array;  (** [levels x dims], 0/1 *)
}

let random_bits rng dims =
  Array.init dims (fun _ -> if Prng.bool rng 0.5 then 1 else 0)

let item_memory config ~n_features =
  let rng = Prng.create config.seed in
  let base = Array.init n_features (fun _ -> random_bits rng config.dims) in
  (* Level hypervectors form a continuum: level 0 is random and each
     subsequent level flips dims/(2*levels) fresh positions, so nearby
     levels stay similar while the extremes are near-orthogonal. *)
  let flips_per_level = config.dims / (2 * config.levels) in
  let current = random_bits rng config.dims in
  let level =
    Array.init config.levels (fun l ->
        if l > 0 then
          for _ = 1 to flips_per_level do
            let d = Prng.int rng config.dims in
            current.(d) <- 1 - current.(d)
          done;
        Array.copy current)
  in
  { base; level }

let quantize_level config v =
  let l = int_of_float (v *. float_of_int config.levels) in
  if l >= config.levels then config.levels - 1 else if l < 0 then 0 else l

let bundle_counts config im features =
  let counts = Array.make config.dims 0 in
  Array.iteri
    (fun i v ->
      let lvl = im.level.(quantize_level config v) in
      let base = im.base.(i) in
      for d = 0 to config.dims - 1 do
        (* binding = XOR of the feature's base HV with its level HV *)
        counts.(d) <- counts.(d) + (base.(d) lxor lvl.(d))
      done)
    features;
  counts

let threshold_counts config ~n_bundled counts =
  let max_val = (1 lsl config.bits) - 1 in
  if max_val = 1 then
    let half = float_of_int n_bundled /. 2. in
    Array.map (fun c -> if float_of_int c > half then 1. else 0.) counts
  else begin
    (* Multi-bit: equal-frequency (quantile) bucketing of the bundle
       counts. Both queries and prototypes quantise adaptively over
       their own count distribution, so vectors with similar count
       rankings land in the same buckets and stay Hamming-close — the
       property the multi-bit CAM mapping relies on. *)
    let n = Array.length counts in
    let levels = max_val + 1 in
    let sorted = Array.copy counts in
    Array.sort compare sorted;
    let thresholds =
      Array.init (levels - 1) (fun i -> sorted.((i + 1) * n / levels))
    in
    Array.map
      (fun c ->
        let rec level i =
          if i >= Array.length thresholds || c < thresholds.(i) then i
          else level (i + 1)
        in
        float_of_int (level 0))
      counts
  end

let encode config im features =
  let counts = bundle_counts config im features in
  threshold_counts config ~n_bundled:(Array.length features) counts

type model = { m_config : config; class_hvs : float array array }

let train config (ds : Dataset.t) =
  let n_features = Dataset.n_features ds in
  let im = item_memory config ~n_features in
  let sums = Array.make_matrix ds.n_classes config.dims 0 in
  let samples = Array.make ds.n_classes 0 in
  Array.iteri
    (fun i features ->
      let c = ds.labels.(i) in
      let counts = bundle_counts config im features in
      samples.(c) <- samples.(c) + 1;
      let s = sums.(c) in
      for d = 0 to config.dims - 1 do
        (* Bundle at sample granularity: accumulate the per-sample
           majority bit so every sample carries equal weight. *)
        s.(d) <-
          s.(d)
          + (if counts.(d) * 2 > n_features then 1 else 0)
      done)
    ds.features;
  let class_hvs =
    Array.mapi
      (fun c s -> threshold_counts config ~n_bundled:samples.(c) s)
      sums
  in
  (im, { m_config = config; class_hvs })

let classify_ref model query =
  let dists = Array.map (Distance.hamming query) model.class_hvs in
  Distance.argmin dists

let accuracy_ref model im (ds : Dataset.t) =
  let correct = ref 0 in
  Array.iteri
    (fun i features ->
      let hv = encode model.m_config im features in
      if classify_ref model hv = ds.labels.(i) then incr correct)
    ds.features;
  float_of_int !correct /. float_of_int (Dataset.n_samples ds)

type synthetic = {
  stored : float array array;
  queries : float array array;
  query_labels : int array;
}

let synthetic ?(seed = 11) ?(noise = 0.15) ?(bipolar = false) ~dims
    ~n_classes ~n_queries ~bits () =
  if bipolar && bits <> 1 then
    invalid_arg "Hdc.synthetic: bipolar vectors are binary";
  let rng = Prng.create seed in
  let max_val = (1 lsl bits) - 1 in
  let random_val () =
    if bipolar then if Prng.bool rng 0.5 then 1. else -1.
    else float_of_int (Prng.int rng (max_val + 1))
  in
  let stored =
    Array.init n_classes (fun _ -> Array.init dims (fun _ -> random_val ()))
  in
  let query_labels = Array.init n_queries (fun _ -> Prng.int rng n_classes) in
  let queries =
    Array.map
      (fun label ->
        let q = Array.copy stored.(label) in
        let flips = int_of_float (noise *. float_of_int dims) in
        for _ = 1 to flips do
          q.(Prng.int rng dims) <- random_val ()
        done;
        q)
      query_labels
  in
  { stored; queries; query_labels }
