(** CART decision trees and their TCAM mapping (the DT2CAM scheme the
    paper cites as prior, specialised CAM tooling — reproduced here as a
    workload on top of the general simulator).

    Features are quantised into [bins] levels and encoded with
    thermometer codes; each root-to-leaf path becomes one ternary TCAM
    row: the path's threshold conditions pin single thermometer bits to
    0 or 1 and every other cell is a don't-care. Because the leaves
    partition the feature space, exactly one stored row exact-matches
    any encoded sample, and that row's class is the prediction. *)

type tree =
  | Leaf of int  (** class label *)
  | Node of { feature : int; threshold : int; left : tree; right : tree }
      (** go left when [bin(feature) <= threshold] *)

type model = {
  tree : tree;
  bins : int;
  mins : float array;  (** per-feature quantisation range *)
  maxs : float array;
  n_classes : int;
}

val train :
  ?max_depth:int -> ?min_samples:int -> ?bins:int -> Dataset.t -> model
(** Greedy CART with Gini impurity on the quantised features
    (defaults: depth 6, min 4 samples per node, 16 bins). *)

val predict : model -> float array -> int
(** Software reference prediction. *)

val accuracy : model -> Dataset.t -> float

val quantize : model -> float array -> int array
(** Per-feature bin indices of a sample. *)

val depth : tree -> int
val n_leaves : tree -> int

(** {1 TCAM mapping} *)

type rules = {
  patterns : float array array;  (** one row per leaf *)
  care : bool array array;
  classes : int array;  (** class of each row *)
  width : int;  (** n_features x (bins - 1) cells *)
}

val to_rules : model -> rules
(** Flatten the tree into ternary rules. *)

val encode_query : model -> float array -> float array
(** Thermometer encoding of a sample, ready to search against
    {!to_rules} patterns. *)

val classify_cam :
  Camsim.Simulator.t -> Camsim.Simulator.id -> rules ->
  model -> float array array -> int array
(** Write the rules into a subarray (ternary write), exact-match search
    the encoded queries, and decode the matching rows into classes.
    @raise Failure when a query matches no rule (cannot happen for
    in-range data; out-of-range values are clamped). *)
