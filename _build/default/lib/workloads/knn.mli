(** Reference K-nearest-neighbours classifier (software baseline for the
    paper's KNN benchmark). *)

val neighbours :
  train:Dataset.t -> k:int -> float array -> (float * int) array
(** The [k] nearest training samples (squared-Euclidean), as
    (distance, train index). *)

val classify : train:Dataset.t -> k:int -> float array -> int
(** Majority label of the [k] nearest neighbours; ties break toward the
    smaller label. *)

val accuracy : train:Dataset.t -> test:Dataset.t -> k:int -> float
