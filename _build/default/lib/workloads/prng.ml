(* Re-export of the shared deterministic generator so existing
   Workloads.Prng users keep working. *)
include Rng
