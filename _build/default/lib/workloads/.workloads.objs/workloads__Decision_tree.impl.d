lib/workloads/decision_tree.ml: Array Camsim Dataset Float List Printf
