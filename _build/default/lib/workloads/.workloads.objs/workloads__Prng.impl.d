lib/workloads/prng.ml: Rng
