lib/workloads/dataset.mli:
