lib/workloads/distance.mli:
