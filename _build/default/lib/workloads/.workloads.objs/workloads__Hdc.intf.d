lib/workloads/hdc.mli: Dataset
