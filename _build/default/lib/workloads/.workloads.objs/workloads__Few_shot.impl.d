lib/workloads/few_shot.ml: Archspec Array Camsim Distance Prng
