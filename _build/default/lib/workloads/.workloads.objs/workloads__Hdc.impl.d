lib/workloads/hdc.ml: Array Dataset Distance Prng
