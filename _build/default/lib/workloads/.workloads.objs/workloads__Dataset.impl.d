lib/workloads/dataset.ml: Array Prng
