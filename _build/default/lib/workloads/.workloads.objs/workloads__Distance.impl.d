lib/workloads/distance.ml: Array Printf
