lib/workloads/knn.mli: Dataset
