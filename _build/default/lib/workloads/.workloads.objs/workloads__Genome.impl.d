lib/workloads/genome.ml: Archspec Array Camsim List Printf Prng String
