lib/workloads/genome.mli: Archspec Camsim
