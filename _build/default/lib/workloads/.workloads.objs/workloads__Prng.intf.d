lib/workloads/prng.mli: Rng
