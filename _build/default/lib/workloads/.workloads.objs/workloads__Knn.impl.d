lib/workloads/knn.ml: Array Dataset Distance
