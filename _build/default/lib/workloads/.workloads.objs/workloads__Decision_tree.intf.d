lib/workloads/decision_tree.mli: Camsim Dataset
