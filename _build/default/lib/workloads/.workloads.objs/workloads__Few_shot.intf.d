lib/workloads/few_shot.mli: Archspec Camsim
