let neighbours ~(train : Dataset.t) ~k query =
  let dists =
    Array.map (fun x -> Distance.euclidean_sq x query) train.features
  in
  Distance.topk ~k dists

let classify ~(train : Dataset.t) ~k query =
  let nn = neighbours ~train ~k query in
  let votes = Array.make train.n_classes 0 in
  Array.iter
    (fun (_, i) -> votes.(train.labels.(i)) <- votes.(train.labels.(i)) + 1)
    nn;
  Distance.argmax (Array.map float_of_int votes)

let accuracy ~train ~(test : Dataset.t) ~k =
  let correct = ref 0 in
  Array.iteri
    (fun i q -> if classify ~train ~k q = test.labels.(i) then incr correct)
    test.features;
  float_of_int !correct /. float_of_int (Dataset.n_samples test)
