(** Hyperdimensional computing (HDC) pipeline: record-based encoding
    (feature item memory bound to quantised level hypervectors, majority
    bundling), class-prototype training, and software reference
    classification. Binary (1-bit) and multi-bit prototypes are
    supported, matching the paper's two HDC implementations.

    Hypervectors are [float array]s holding small non-negative integers
    (0/1 when binary) so they can be written to the CAM simulator
    directly. *)

type config = {
  dims : int;  (** hypervector dimensionality (paper: 8192) *)
  levels : int;  (** quantisation levels of feature values *)
  bits : int;  (** bits per prototype element: 1 = binary *)
  seed : int;
}

val default_config : config
(** 8192 dims, 16 levels, binary, seed 1. *)

type item_memory

val item_memory : config -> n_features:int -> item_memory
(** Random base hypervector per feature plus a flip-continuum of level
    hypervectors. *)

val encode : config -> item_memory -> float array -> float array
(** Encode a feature vector (values in [0,1]) into a hypervector with
    elements in [0, 2^bits). *)

type model = {
  m_config : config;
  class_hvs : float array array;  (** [n_classes x dims] *)
}

val train : config -> Dataset.t -> item_memory * model
(** Bundle the encodings of each class's training samples into
    class-prototype hypervectors. *)

val classify_ref : model -> float array -> int
(** Software reference: class of the Hamming-nearest prototype. *)

val accuracy_ref : model -> item_memory -> Dataset.t -> float

(** {1 Synthetic prototypes} — architectural experiments only need
    hypervectors of the right geometry; this generates them directly. *)

type synthetic = {
  stored : float array array;  (** [n_classes x dims] prototypes *)
  queries : float array array;  (** [n_queries x dims] *)
  query_labels : int array;
}

val synthetic :
  ?seed:int -> ?noise:float -> ?bipolar:bool -> dims:int -> n_classes:int ->
  n_queries:int -> bits:int -> unit -> synthetic
(** Random prototypes; each query is a prototype with a [noise] fraction
    of dimensions re-randomised (default 0.15). With [bipolar] (binary
    only) elements are -1/+1 instead of 0/1 — on bipolar vectors the
    dot-to-Hamming mapping used by the CAM lowering is exact
    ([dot = dims - 2*hamming]), making CAM and software rankings agree
    for every rank, not just well-separated top ones. *)
