type embedder = { weights : float array array (* out_dim x in_dim *) }

let embedder ?(seed = 5) ~in_dim ~out_dim () =
  let rng = Prng.create seed in
  {
    weights =
      Array.init out_dim (fun _ ->
          Array.init in_dim (fun _ -> Prng.gaussian rng));
  }

let embed e x =
  Array.map
    (fun w ->
      let s = ref 0. in
      Array.iteri (fun i v -> s := !s +. (v *. w.(i))) x;
      if !s >= 0. then 1. else 0.)
    e.weights

type episode = {
  support : float array array;
  support_labels : int array;
  queries : float array array;
  query_labels : int array;
}

let make_episode ?(seed = 7) ?(noise = 0.25) ~n_way ~k_shot ~n_queries ~dim
    () =
  let rng = Prng.create seed in
  let prototypes =
    Array.init n_way (fun _ -> Array.init dim (fun _ -> Prng.gaussian rng))
  in
  let sample c =
    Array.map (fun v -> v +. (noise *. Prng.gaussian rng)) prototypes.(c)
  in
  let support_labels =
    Array.init (n_way * k_shot) (fun i -> i / k_shot)
  in
  let support = Array.map sample support_labels in
  let query_labels = Array.init n_queries (fun _ -> Prng.int rng n_way) in
  let queries = Array.map sample query_labels in
  { support; support_labels; queries; query_labels }

let vote ~n_way ~labels neighbour_idxs =
  let votes = Array.make n_way 0 in
  Array.iter
    (fun i -> votes.(labels.(i)) <- votes.(labels.(i)) + 1)
    neighbour_idxs;
  Distance.argmax (Array.map float_of_int votes)

let n_way_of episode =
  1 + Array.fold_left max 0 episode.support_labels

let classify_software e episode ~k =
  let keys = Array.map (embed e) episode.support in
  let n_way = n_way_of episode in
  Array.map
    (fun q ->
      let key = embed e q in
      let nn = Distance.topk ~k (Array.map (Distance.hamming key) keys) in
      vote ~n_way ~labels:episode.support_labels (Array.map snd nn))
    episode.queries

let classify_cam ?spec e episode ~k =
  let keys = Array.map (embed e) episode.support in
  let n_keys = Array.length keys in
  let dim = Array.length keys.(0) in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        { Archspec.Spec.default with rows = max 16 n_keys; cols = dim }
  in
  if spec.rows < n_keys || spec.cols < dim then
    invalid_arg "Few_shot.classify_cam: support set does not fit";
  let sim = Camsim.Simulator.create spec in
  Camsim.Simulator.set_query_hint sim (Array.length episode.queries);
  let bank = Camsim.Simulator.alloc_bank sim ~rows:spec.rows ~cols:spec.cols in
  let mat = Camsim.Simulator.alloc_mat sim bank in
  let arr = Camsim.Simulator.alloc_array sim mat in
  let sub = Camsim.Simulator.alloc_subarray sim arr in
  ignore (Camsim.Simulator.write sim sub ~row_offset:0 keys);
  let query_keys = Array.map (embed e) episode.queries in
  ignore
    (Camsim.Simulator.search sim sub ~queries:query_keys ~row_offset:0
       ~rows:n_keys ~kind:`Best ~metric:`Hamming ());
  let dists = Camsim.Simulator.read sim sub in
  let (_, idxs), _ = Camsim.Simulator.select_best sim ~dist:dists ~k ~largest:false in
  let n_way = n_way_of episode in
  ( Array.map (vote ~n_way ~labels:episode.support_labels) idxs,
    Camsim.Simulator.stats sim )

let episode_accuracy predictions labels =
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr correct) predictions;
  float_of_int !correct /. float_of_int (Array.length labels)
