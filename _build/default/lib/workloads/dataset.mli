(** Synthetic datasets standing in for the paper's MNIST (HDC) and
    chest-X-ray Pneumonia (KNN) data. Class structure is controlled so
    the functional pipelines achieve realistic, verifiable accuracy;
    the architectural experiments only depend on the dataset
    dimensions, which follow the paper. *)

type t = {
  features : float array array;  (** [n_samples x n_features] *)
  labels : int array;
  n_classes : int;
}

val n_samples : t -> int
val n_features : t -> int

val mnist_like :
  ?seed:int -> ?noise:float -> n_features:int -> n_classes:int ->
  samples_per_class:int -> unit -> t
(** Digit-like data: each class has a smooth random template in [0,1];
    samples are the template plus bounded noise (default 0.15). *)

val pneumonia_like :
  ?seed:int -> ?separation:float -> n_features:int ->
  samples_per_class:int -> unit -> t
(** Two-class image-feature data (normal vs pneumonia): Gaussian class
    clusters with the given mean separation (default 1.2). *)

val split : ?seed:int -> t -> train_fraction:float -> t * t
(** Shuffled train/test split, stratification-free. *)
