type base = A | C | G | T
type sequence = base array

let base_of_int = function 0 -> A | 1 -> C | 2 -> G | _ -> T

let random_sequence ?(seed = 1) n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> base_of_int (Prng.int rng 4))

let mutate ?(seed = 2) seq ~rate =
  let rng = Prng.create seed in
  Array.map
    (fun b ->
      if Prng.bool rng rate then
        (* pick a different base *)
        let rec other () =
          let b' = base_of_int (Prng.int rng 4) in
          if b' = b then other () else b'
        in
        other ()
      else b)
    seq

let base_to_char = function A -> 'A' | C -> 'C' | G -> 'G' | T -> 'T'

let to_string seq =
  String.init (Array.length seq) (fun i -> base_to_char seq.(i))

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | 'A' | 'a' -> A
      | 'C' | 'c' -> C
      | 'G' | 'g' -> G
      | 'T' | 't' -> T
      | c -> invalid_arg (Printf.sprintf "Genome.of_string: %c" c))

let base_index = function A -> 0 | C -> 1 | G -> 2 | T -> 3

let encode seq =
  let out = Array.make (4 * Array.length seq) 0. in
  Array.iteri (fun i b -> out.((4 * i) + base_index b) <- 1.) seq;
  out

let kmers seq ~k =
  let n = Array.length seq in
  if k < 1 || k > n then invalid_arg "Genome.kmers: bad k";
  Array.init (n - k + 1) (fun i -> Array.sub seq i k)

let mismatches a b =
  if Array.length a <> Array.length b then
    invalid_arg "Genome.mismatches: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let scan_software ~reference ~pattern ~max_mismatches =
  let k = Array.length pattern in
  kmers reference ~k
  |> Array.to_list
  |> List.mapi (fun i w -> (i, mismatches w pattern))
  |> List.filter (fun (_, d) -> d <= max_mismatches)
  |> List.map fst

type cam_index = {
  sim : Camsim.Simulator.t;
  sub : Camsim.Simulator.id;
  k : int;
  positions : int;
}

let build_index ?spec ~reference ~k () =
  let windows = kmers reference ~k in
  let positions = Array.length windows in
  let cols = 4 * k in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        {
          Archspec.Spec.default with
          rows = max 16 positions;
          cols;
          cam_kind = Archspec.Spec.Bcam;
        }
  in
  if spec.rows < positions then
    invalid_arg "Genome.build_index: reference does not fit the subarray";
  if spec.cols < cols then
    invalid_arg "Genome.build_index: k-mer wider than the subarray";
  let sim = Camsim.Simulator.create spec in
  let bank = Camsim.Simulator.alloc_bank sim ~rows:spec.rows ~cols:spec.cols in
  let mat = Camsim.Simulator.alloc_mat sim bank in
  let arr = Camsim.Simulator.alloc_array sim mat in
  let sub = Camsim.Simulator.alloc_subarray sim arr in
  ignore
    (Camsim.Simulator.write sim sub ~row_offset:0
       (Array.map encode windows));
  { sim; sub; k; positions }

let scan_cam index ~pattern ~max_mismatches =
  if Array.length pattern <> index.k then
    invalid_arg "Genome.scan_cam: pattern length differs from the index k";
  (* one base mismatch = two one-hot cell mismatches *)
  let threshold = float_of_int (2 * max_mismatches) in
  ignore
    (Camsim.Simulator.search index.sim index.sub
       ~queries:[| encode pattern |] ~row_offset:0 ~rows:index.positions
       ~kind:`Threshold ~metric:`Hamming ~threshold ());
  let flags = (Camsim.Simulator.read index.sim index.sub).(0) in
  Array.to_list flags
  |> List.mapi (fun i f -> (i, f))
  |> List.filter (fun (_, f) -> f = 1.)
  |> List.map fst
