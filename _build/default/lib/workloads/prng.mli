(** Deterministic SplitMix64 generator — alias of {!Rng} (shared
    with the simulator's defect-injection machinery). *)

include module type of Rng
