let um2_to_mm2 = 1e-6

let subarray_area (tech : Tech.t) ~rows ~cols =
  let r = float_of_int rows and c = float_of_int cols in
  ((r *. c *. tech.a_cell)
  +. (r *. tech.a_sense_per_row)
  +. (c *. tech.a_driver_per_col)
  +. tech.a_periph_subarray)
  *. um2_to_mm2

let array_area tech ~(spec : Archspec.Spec.t) =
  (float_of_int spec.subarrays_per_array
  *. subarray_area tech ~rows:spec.rows ~cols:spec.cols)
  +. (tech.Tech.a_array_overhead *. um2_to_mm2)

let mat_area tech ~(spec : Archspec.Spec.t) =
  (float_of_int spec.arrays_per_mat *. array_area tech ~spec)
  +. (tech.Tech.a_mat_overhead *. um2_to_mm2)

let bank_area tech ~(spec : Archspec.Spec.t) =
  (float_of_int spec.mats_per_bank *. mat_area tech ~spec)
  +. (tech.Tech.a_bank_overhead *. um2_to_mm2)

let chip_area tech ~spec ~banks = float_of_int banks *. bank_area tech ~spec

let peripheral_fraction (tech : Tech.t) ~(spec : Archspec.Spec.t) =
  let total = bank_area tech ~spec in
  let cells =
    float_of_int
      (spec.rows * spec.cols * Archspec.Spec.subarrays_per_bank spec)
    *. tech.a_cell *. um2_to_mm2
  in
  (total -. cells) /. total
