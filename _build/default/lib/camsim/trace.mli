(** Bounded event trace of device operations, for debugging mappings and
    inspecting what the generated code asks the hardware to do. *)

type event =
  | Alloc of { level : string; id : int }
  | Write of { sub : int; rows : int; row_offset : int }
  | Search of {
      sub : int;
      queries : int;
      rows : int;
      row_offset : int;
      kind : string;
    }
  | Merge of { elems : int }
  | Select of { queries : int; k : int }

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer keeping the last [capacity] events (default 10000). *)

val record : t -> event -> unit
val events : t -> event list
(** Oldest first (within the retained window). *)

val total_recorded : t -> int
(** Including events that have been evicted. *)

val event_to_string : event -> string
val dump : t -> string
