lib/camsim/area_model.mli: Archspec Tech
