lib/camsim/simulator.mli: Archspec Energy_model Stats Tech Trace
