lib/camsim/energy_model.ml: Option Tech
