lib/camsim/simulator.ml: Archspec Array Energy_model Float Hashtbl Printf Rng Stats Subarray Tech Trace
