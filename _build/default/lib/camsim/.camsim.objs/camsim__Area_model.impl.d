lib/camsim/area_model.ml: Archspec Tech
