lib/camsim/energy_model.mli: Tech
