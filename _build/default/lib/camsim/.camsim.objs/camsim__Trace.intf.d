lib/camsim/trace.mli:
