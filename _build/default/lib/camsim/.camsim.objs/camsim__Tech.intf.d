lib/camsim/tech.mli:
