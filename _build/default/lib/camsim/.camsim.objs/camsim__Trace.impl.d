lib/camsim/trace.ml: Array List Printf String
