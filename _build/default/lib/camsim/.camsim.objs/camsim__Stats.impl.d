lib/camsim/stats.ml: Printf
