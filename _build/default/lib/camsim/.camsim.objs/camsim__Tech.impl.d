lib/camsim/tech.ml:
