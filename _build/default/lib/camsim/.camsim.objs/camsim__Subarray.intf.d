lib/camsim/subarray.mli:
