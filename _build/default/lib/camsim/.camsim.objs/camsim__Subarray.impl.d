lib/camsim/subarray.ml: Array Float Int64 Printf
