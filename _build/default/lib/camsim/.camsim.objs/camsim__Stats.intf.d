lib/camsim/stats.mli:
