(** Technology parameters of a CAM cell/array design.

    The default instance models the 2FeFET CAM of Yin et al. (FeCAM) at
    the 45 nm node, with latency anchored to the paper's reported search
    latencies (860 ps for a 16x16 array, 7.5 ns for 256x256) and energy
    constants in the femtojoule-per-cell regime reported for FeFET CAMs
    (Eva-CAM). All times are seconds, energies joules. *)

type t = {
  name : string;
  node_nm : int;
  (* --- latency --- *)
  t_search_base : float;  (** fixed part of one search cycle *)
  t_search_per_col : float;  (** matchline discharge scaling with C *)
  t_write_row : float;  (** programming one row (all columns parallel) *)
  t_batch_switch : float;
      (** extra cycle time to reconfigure selective row precharge between
          batches sharing a subarray *)
  t_batch_switch_per_col : float;
      (** column-dependent part of the batch reconfiguration (search-line
          drivers re-broadcast the query slice) *)
  t_merge_per_elem : float;  (** accumulating one partial result element *)
  t_select_base : float;  (** fixed winner-take-all / top-k sensing time *)
  t_select_per_log2 : float;  (** WTA tree depth component, per log2(N) *)
  t_select_per_k : float;
      (** pipelined extraction of each additional top-k candidate *)
  (* --- energy --- *)
  e_cell_search : float;  (** per active cell per search *)
  e_precharge_per_cell : float;  (** ML precharge, active rows only *)
  e_driver_per_col : float;  (** search-line driver, per column per search *)
  e_sense_best_per_row : float;  (** best-match (ADC/WTA) sensing per row *)
  e_sense_exact_per_row : float;  (** exact-match sensing per row *)
  e_periph_subarray : float;  (** fixed peripheral cost per search *)
  e_batch_switch : float;  (** per extra batch per search cycle *)
  e_merge_per_elem : float;
  e_select_per_elem : float;
  e_write_cell : float;
  e_bank_per_query : float;  (** bank-level I/O + routing per query *)
  e_mat_per_query : float;
  e_array_per_query : float;
  (* --- multi-bit --- *)
  multibit_volt_factor : float;
      (** relative matchline/dataline voltage increase per extra bit;
          energy scales with the square of the voltage *)
  (* --- area, um^2 --- *)
  a_cell : float;
  a_sense_per_row : float;  (** sense amplifier per subarray row *)
  a_driver_per_col : float;  (** search-line driver per subarray column *)
  a_periph_subarray : float;  (** fixed decoder/control per subarray *)
  a_array_overhead : float;
  a_mat_overhead : float;
  a_bank_overhead : float;
}

val fefet_45nm : t
(** Default 2FeFET 45 nm CAM technology. *)

val fefet_45nm_v2 : t
(** A slightly different calibration of the same design, standing in for
    the "different simulator version" used by the hand-crafted baseline
    in the paper's validation (Section IV-B). *)

val search_latency : t -> cols:int -> float
(** Check: [search_latency fefet_45nm ~cols:16 = 860e-12] and
    [~cols:256 = 7.5e-9] (up to rounding). *)

val voltage_energy_factor : t -> bits:int -> float
(** [1.0] for binary cells, [(1 + f*(bits-1))^2] for multi-bit. *)
