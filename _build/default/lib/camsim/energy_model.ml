type cost = { latency : float; energy : float }

let zero = { latency = 0.; energy = 0. }

let add a b =
  { latency = a.latency +. b.latency; energy = a.energy +. b.energy }

let search (tech : Tech.t) ~bits ~cols ~active_rows ?physical_rows ~kind
    ~queries ~batch_extra () =
  let q = float_of_int queries in
  let r = float_of_int active_rows in
  let c = float_of_int cols in
  let vf = Tech.voltage_energy_factor tech ~bits in
  let t_one =
    Tech.search_latency tech ~cols
    +.
    if batch_extra then
      tech.t_batch_switch +. (c *. tech.t_batch_switch_per_col)
    else 0.
  in
  let e_sense_per_row =
    match kind with
    | `Best -> tech.e_sense_best_per_row
    | `Exact | `Threshold | `Range -> tech.e_sense_exact_per_row
  in
  (* Batched subarrays (cam-density) lose the selective-precharge energy
     benefit: the matchlines of the whole physical array are precharged
     on every cycle, while sensing stays restricted to the active rows.
     This is what makes density costly on large subarrays (Fig. 8a). *)
  let precharge_rows =
    if batch_extra then
      float_of_int (Option.value ~default:active_rows physical_rows)
    else r
  in
  let e_one =
    (r *. c *. tech.e_cell_search *. vf)
    +. (precharge_rows *. c *. tech.e_precharge_per_cell *. vf)
    +. (c *. tech.e_driver_per_col *. vf)
    +. (r *. e_sense_per_row)
    +. tech.e_periph_subarray
    +. if batch_extra then tech.e_batch_switch else 0.
  in
  { latency = q *. t_one; energy = q *. e_one }

let write (tech : Tech.t) ~bits ~cols ~rows =
  let vf = Tech.voltage_energy_factor tech ~bits in
  {
    latency = float_of_int rows *. tech.t_write_row;
    energy =
      float_of_int (rows * cols) *. tech.e_write_cell *. vf;
  }

let merge (tech : Tech.t) ~elems =
  let n = float_of_int elems in
  {
    latency = n *. tech.t_merge_per_elem;
    energy = n *. tech.e_merge_per_elem;
  }

let select (tech : Tech.t) ~elems_per_query ~k ~queries =
  let q = float_of_int queries in
  let n = float_of_int elems_per_query in
  let depth = ceil (log (max 2. n) /. log 2.) in
  let kf = float_of_int (max 1 k) in
  {
    latency =
      q
      *. (tech.t_select_base
         +. (tech.t_select_per_log2 *. depth)
         +. (tech.t_select_per_k *. (kf -. 1.)));
    energy = q *. n *. tech.e_select_per_elem *. kf;
  }

let level_overhead (tech : Tech.t) ~level ~queries =
  let q = float_of_int queries in
  let e =
    match level with
    | `Bank -> tech.e_bank_per_query
    | `Mat -> tech.e_mat_per_query
    | `Array -> tech.e_array_per_query
    | `Subarray -> 0.
  in
  { latency = 0.; energy = q *. e }
