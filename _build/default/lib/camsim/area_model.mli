(** Chip-area estimation (the Eva-CAM "architectural modeling for
    chip-level estimations" role).

    Every subarray carries its own sense amplifiers, search-line drivers
    and control; arrays, mats and banks add routing overheads. This is
    what makes the paper's iso-capacity systems *not* iso-area
    (Section IV-C2): splitting an array into more, smaller subarrays
    multiplies the peripheral share. All results in mm^2. *)

val subarray_area : Tech.t -> rows:int -> cols:int -> float
(** Cell field plus per-subarray peripherals, mm^2. *)

val array_area : Tech.t -> spec:Archspec.Spec.t -> float
(** One array: its subarrays plus the array overhead. *)

val bank_area : Tech.t -> spec:Archspec.Spec.t -> float

val chip_area : Tech.t -> spec:Archspec.Spec.t -> banks:int -> float
(** Total accelerator area for [banks] fully-populated banks. *)

val peripheral_fraction : Tech.t -> spec:Archspec.Spec.t -> float
(** Fraction of one bank's area that is not CAM cells — rises as
    subarrays shrink. *)
