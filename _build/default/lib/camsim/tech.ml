type t = {
  name : string;
  node_nm : int;
  t_search_base : float;
  t_search_per_col : float;
  t_write_row : float;
  t_batch_switch : float;
  t_batch_switch_per_col : float;
  t_merge_per_elem : float;
  t_select_base : float;
  t_select_per_log2 : float;
  t_select_per_k : float;
  e_cell_search : float;
  e_precharge_per_cell : float;
  e_driver_per_col : float;
  e_sense_best_per_row : float;
  e_sense_exact_per_row : float;
  e_periph_subarray : float;
  e_batch_switch : float;
  e_merge_per_elem : float;
  e_select_per_elem : float;
  e_write_cell : float;
  e_bank_per_query : float;
  e_mat_per_query : float;
  e_array_per_query : float;
  multibit_volt_factor : float;
  (* --- area (um^2) --- *)
  a_cell : float;
  a_sense_per_row : float;
  a_driver_per_col : float;
  a_periph_subarray : float;
  a_array_overhead : float;
  a_mat_overhead : float;
  a_bank_overhead : float;
}

(* Latency anchors from the paper: 860 ps at 16 columns, 7.5 ns at 256
   columns; linear in C in between (matchline discharge slows with the
   number of cells hanging off the line). *)
let anchor_c0 = 16.
let anchor_t0 = 860e-12
let anchor_c1 = 256.
let anchor_t1 = 7.5e-9
let slope = (anchor_t1 -. anchor_t0) /. (anchor_c1 -. anchor_c0)

let fefet_45nm =
  {
    name = "2FeFET-45nm";
    node_nm = 45;
    t_search_base = anchor_t0 -. (slope *. anchor_c0);
    t_search_per_col = slope;
    t_write_row = 1.0e-9;
    t_batch_switch = 0.6e-9;
    t_batch_switch_per_col = 20.0e-12;
    t_merge_per_elem = 0.03e-9;
    t_select_base = 4.0e-9;
    t_select_per_log2 = 0.9e-9;
    t_select_per_k = 0.5e-9;
    e_cell_search = 4.8e-15;
    e_precharge_per_cell = 1.5e-15;
    e_driver_per_col = 36.0e-15;
    e_sense_best_per_row = 108.0e-15;
    e_sense_exact_per_row = 24.0e-15;
    e_periph_subarray = 1.32e-12;
    e_batch_switch = 540.0e-15;
    e_merge_per_elem = 12.0e-15;
    e_select_per_elem = 7.2e-15;
    e_write_cell = 24.0e-15;
    e_bank_per_query = 570.0e-12;
    e_mat_per_query = 120.0e-12;
    e_array_per_query = 40.0e-12;
    multibit_volt_factor = 0.30;
    (* 2FeFET TCAM cell ~0.25 um^2 at 45 nm (FeCAM); peripheral areas
       sized so that per-subarray sensing/driving is comparable to a
       16x16 cell field, matching the paper's remark that small-subarray
       iso-capacity systems pay substantial peripheral area. *)
    a_cell = 0.25;
    a_sense_per_row = 1.6;
    a_driver_per_col = 0.9;
    a_periph_subarray = 45.0;
    a_array_overhead = 180.0;
    a_mat_overhead = 700.0;
    a_bank_overhead = 2800.0;
  }

let fefet_45nm_v2 =
  {
    fefet_45nm with
    name = "2FeFET-45nm-v2";
    (* The hand-crafted baseline was evaluated with a slightly older
       simulator version: marginally different peripheral and sensing
       calibration (paper Section IV-B attributes the 0.9% / 5.5%
       validation deviation to exactly this). *)
    t_search_base = fefet_45nm.t_search_base *. 1.01;
    t_select_base = fefet_45nm.t_select_base *. 1.015;
    e_periph_subarray = fefet_45nm.e_periph_subarray *. 1.13;
    e_sense_best_per_row = fefet_45nm.e_sense_best_per_row *. 1.10;
    e_bank_per_query = fefet_45nm.e_bank_per_query *. 1.07;
  }

let search_latency t ~cols =
  t.t_search_base +. (t.t_search_per_col *. float_of_int cols)

let voltage_energy_factor t ~bits =
  if bits <= 1 then 1.0
  else
    let v = 1.0 +. (t.multibit_volt_factor *. float_of_int (bits - 1)) in
    v *. v
