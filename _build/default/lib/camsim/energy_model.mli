(** Architectural latency/energy model on top of {!Tech} (the Eva-CAM
    substitute). All costs are per-operation; power is derived by the
    caller as total energy over total latency. *)

type cost = { latency : float; energy : float }

val zero : cost
val add : cost -> cost -> cost

val search :
  Tech.t ->
  bits:int ->
  cols:int ->
  active_rows:int ->
  ?physical_rows:int ->
  kind:[ `Exact | `Best | `Threshold | `Range ] ->
  queries:int ->
  batch_extra:bool ->
  unit ->
  cost
(** Cost of searching [queries] query vectors against [active_rows]
    pre-charged rows of a subarray with [cols] columns. With selective
    row precharge only the active rows pay precharge and sensing energy.
    [batch_extra] (cam-density) adds the row-decoder reconfiguration
    cost and forfeits the precharge benefit: all [physical_rows] pay
    matchline precharge on every cycle. *)

val write : Tech.t -> bits:int -> cols:int -> rows:int -> cost
(** Programming [rows] full rows. *)

val merge : Tech.t -> elems:int -> cost
(** Accumulating [elems] partial-result elements into a buffer. *)

val select : Tech.t -> elems_per_query:int -> k:int -> queries:int -> cost
(** Final top-k selection (winner-take-all tree) over the merged
    distances. *)

val level_overhead :
  Tech.t -> level:[ `Bank | `Mat | `Array | `Subarray ] -> queries:int ->
  cost
(** Per-query routing/I-O overhead of one allocated hierarchy level
    (charged once per allocated bank/mat/array for the whole query
    batch; zero latency — it is pipelined with the searches). *)
