open Vhelp

let alloc_name = "memref.alloc"
let subview_name = "memref.subview"

let alloc b shape elem =
  Ir.Builder.op1 b alloc_name (Ir.Types.memref shape elem)

let subview b base ~offsets ~sizes =
  Ir.Builder.op1 b
    ~operands:(base :: offsets)
    ~attrs:[ ("sizes", Ir.Attr.Ints sizes) ]
    subview_name
    (Ir.Types.with_shape base.Ir.Value.ty sizes)

let load_name = "memref.load"
let store_name = "memref.store"

let load b base ~indices =
  Ir.Builder.op1 b
    ~operands:(base :: indices)
    load_name
    (Ir.Types.Scalar (Ir.Types.element base.Ir.Value.ty))

let store b value base ~indices =
  Ir.Builder.op0 b ~operands:(value :: base :: indices) store_name

let verify_load op =
  results op 1 >>> fun () ->
  check (List.length op.Ir.Op.operands >= 1) "load needs a base memref"
  >>> fun () ->
  operand_is op 0 is_memref "a memref" >>> fun () ->
  check
    (List.length op.Ir.Op.operands
    = 1 + List.length (Ir.Types.shape (Ir.Op.operand op 0).ty))
    "load needs one index per dimension"

let verify_store op =
  results op 0 >>> fun () ->
  check (List.length op.Ir.Op.operands >= 2) "store needs value and memref"
  >>> fun () ->
  operand_is op 1 is_memref "a memref" >>> fun () ->
  check
    (List.length op.Ir.Op.operands
    = 2 + List.length (Ir.Types.shape (Ir.Op.operand op 1).ty))
    "store needs one index per dimension"

let verify_alloc op =
  operands op 0 >>> fun () ->
  results op 1 >>> fun () -> result_is op 0 is_memref "a memref"

let verify_subview op =
  results op 1 >>> fun () ->
  check (List.length op.Ir.Op.operands >= 1) "subview needs a base memref"
  >>> fun () ->
  operand_is op 0 is_memref "a memref" >>> fun () ->
  has_attr op "sizes" >>> fun () ->
  let rank = List.length (Ir.Types.shape (Ir.Op.operand op 0).ty) in
  check
    (List.length op.Ir.Op.operands = 1 + rank)
    "subview needs one offset per dimension"
  >>> fun () ->
  check
    (List.length (Ir.Attr.as_ints (Ir.Op.attr_exn op "sizes")) = rank)
    "subview sizes rank mismatch"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"memref" ~mnemonic ~summary ~verify ()
  in
  reg "alloc" "allocate a zero-initialised buffer" verify_alloc;
  reg "subview" "aliasing view into a buffer" verify_subview;
  reg "load" "read one buffer element" verify_load;
  reg "store" "write one buffer element" verify_store
