open Vhelp

let for_name = "scf.for"
let parallel_name = "scf.parallel"
let if_name = "scf.if"
let yield_name = "scf.yield"

let loop name b ~lb ~ub ~step body =
  let iv = Ir.Value.fresh Ir.Types.Index in
  let inner = Ir.Builder.create () in
  body inner iv;
  let ops = Ir.Builder.finish inner in
  let region =
    { Ir.Op.blocks = [ { Ir.Op.body = ops; block_args = [ iv ] } ] }
  in
  Ir.Builder.op0 b ~operands:[ lb; ub; step ] ~regions:[ region ] name

let for_ b = loop for_name b
let parallel b = loop parallel_name b

let loop_of_mode = function
  | `Sequential -> for_
  | `Parallel -> parallel

let if_ b cond body =
  let inner = Ir.Builder.create () in
  body inner;
  let ops = Ir.Builder.finish inner in
  Ir.Builder.op0 b ~operands:[ cond ] ~regions:[ Ir.Op.region ops ] if_name

let yield b = Ir.Builder.op0 b yield_name

let verify_loop op =
  operands op 3 >>> fun () ->
  operand_is op 0 is_index "lower bound" >>> fun () ->
  operand_is op 1 is_index "upper bound" >>> fun () ->
  operand_is op 2 is_index "step" >>> fun () ->
  check (List.length op.Ir.Op.regions = 1) "loop needs one region"
  >>> fun () ->
  match op.Ir.Op.regions with
  | [ { blocks = [ b ] } ] ->
      check
        (List.length b.block_args = 1
        && (List.hd b.block_args).Ir.Value.ty = Ir.Types.Index)
        "loop body must take a single index block argument"
  | _ -> Error "loop region must have a single block"

let verify_if op =
  operands op 1 >>> fun () ->
  operand_is op 0
    (fun t -> t = Ir.Types.Scalar Ir.Types.I1)
    "an i1 condition"
  >>> fun () ->
  check
    (List.length op.Ir.Op.regions >= 1 && List.length op.Ir.Op.regions <= 2)
    "if needs one or two regions"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"scf" ~mnemonic ~summary ~verify ()
  in
  reg "for" "sequential counted loop" verify_loop;
  reg "parallel" "parallel counted loop" verify_loop;
  reg "if" "conditional execution" verify_if;
  reg "yield" "region terminator" (fun _ -> Ok ())
