(** The [memref] dialect: mutable buffers with aliasing subviews, used
    after bufferization (cim-to-cam). *)

val alloc_name : string
val subview_name : string

val alloc : Ir.Builder.t -> int list -> Ir.Types.elem -> Ir.Value.t
(** Zero-initialised buffer. *)

val subview :
  Ir.Builder.t -> Ir.Value.t -> offsets:Ir.Value.t list -> sizes:int list ->
  Ir.Value.t
(** Aliasing view with dynamic per-dimension offsets and static sizes. *)

val load_name : string
val store_name : string

val load :
  Ir.Builder.t -> Ir.Value.t -> indices:Ir.Value.t list -> Ir.Value.t
(** Read one element (one index per dimension). *)

val store :
  Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> indices:Ir.Value.t list ->
  unit
(** [store b value base ~indices] writes one element. *)

val register : unit -> unit
