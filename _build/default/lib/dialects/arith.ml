open Vhelp

let constant_name = "arith.constant"
let cmpi_name = "arith.cmpi"

let const_index b i =
  Ir.Builder.op1 b ~attrs:[ ("value", Ir.Attr.Int i) ] constant_name
    Ir.Types.Index

let const_f32 b f =
  Ir.Builder.op1 b ~attrs:[ ("value", Ir.Attr.Float f) ] constant_name
    (Ir.Types.Scalar Ir.Types.F32)

let binop name b x y =
  Ir.Builder.op1 b ~operands:[ x; y ] ("arith." ^ name) Ir.Types.Index

let addi b = binop "addi" b
let subi b = binop "subi" b
let muli b = binop "muli" b
let divi b = binop "divi" b
let remi b = binop "remi" b

type pred = Lt | Le | Eq | Ne | Gt | Ge

let pred_to_attr = function
  | Lt -> Ir.Attr.Sym "lt"
  | Le -> Ir.Attr.Sym "le"
  | Eq -> Ir.Attr.Sym "eq"
  | Ne -> Ir.Attr.Sym "ne"
  | Gt -> Ir.Attr.Sym "gt"
  | Ge -> Ir.Attr.Sym "ge"

let pred_of_attr a =
  match Ir.Attr.as_sym a with
  | "lt" -> Lt
  | "le" -> Le
  | "eq" -> Eq
  | "ne" -> Ne
  | "gt" -> Gt
  | "ge" -> Ge
  | s -> invalid_arg ("unknown predicate #" ^ s)

let cmpi b pred x y =
  Ir.Builder.op1 b ~operands:[ x; y ]
    ~attrs:[ ("pred", pred_to_attr pred) ]
    cmpi_name
    (Ir.Types.Scalar Ir.Types.I1)

(* Scalar float arithmetic, used by the host (loop-dialect) lowering. *)
let fbinop name b x y =
  Ir.Builder.op1 b ~operands:[ x; y ] ("arith." ^ name)
    (Ir.Types.Scalar Ir.Types.F32)

let addf b = fbinop "addf" b
let subf b = fbinop "subf" b
let mulf b = fbinop "mulf" b
let divf b = fbinop "divf" b

let cmpf b pred x y =
  Ir.Builder.op1 b ~operands:[ x; y ]
    ~attrs:[ ("pred", pred_to_attr pred) ]
    "arith.cmpf"
    (Ir.Types.Scalar Ir.Types.I1)

let select b cond x y =
  Ir.Builder.op1 b ~operands:[ cond; x; y ] "arith.select"
    x.Ir.Value.ty

let verify_constant op =
  operands op 0 >>> fun () ->
  results op 1 >>> fun () -> has_attr op "value"

let verify_binop op =
  operands op 2 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 is_index "an index" >>> fun () ->
  operand_is op 1 is_index "an index"

let verify_cmpi op =
  verify_binop op >>> fun () -> has_attr op "pred"

let verify_fbinop op =
  operands op 2 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 is_scalar "a scalar" >>> fun () ->
  operand_is op 1 is_scalar "a scalar"

let verify_select op =
  operands op 3 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0
    (fun t -> t = Ir.Types.Scalar Ir.Types.I1)
    "an i1 condition"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"arith" ~mnemonic ~summary ~verify ()
  in
  reg "constant" "compile-time constant" verify_constant;
  List.iter
    (fun m -> reg m ("index " ^ m) verify_binop)
    [ "addi"; "subi"; "muli"; "divi"; "remi" ];
  reg "cmpi" "index comparison" verify_cmpi;
  List.iter
    (fun m -> reg m ("float " ^ m) verify_fbinop)
    [ "addf"; "subf"; "mulf"; "divf" ];
  reg "cmpf" "float comparison" (fun op ->
      verify_fbinop op >>> fun () -> has_attr op "pred");
  reg "select" "conditional value choice" verify_select
