(** Shared helpers for writing per-op verifiers. *)

val check : bool -> string -> (unit, string) result
(** [check cond msg] is [Ok ()] when [cond] holds, [Error msg] otherwise. *)

val ( >>> ) :
  (unit, string) result -> (unit -> (unit, string) result) ->
  (unit, string) result
(** Short-circuiting sequencing of checks. *)

val operands : Ir.Op.t -> int -> (unit, string) result
(** Exactly [n] operands. *)

val results : Ir.Op.t -> int -> (unit, string) result

val operand_is :
  Ir.Op.t -> int -> (Ir.Types.t -> bool) -> string -> (unit, string) result
(** [operand_is op i pred desc] checks the type of operand [i]. *)

val result_is :
  Ir.Op.t -> int -> (Ir.Types.t -> bool) -> string -> (unit, string) result

val has_attr : Ir.Op.t -> string -> (unit, string) result

val is_tensor : Ir.Types.t -> bool
val is_memref : Ir.Types.t -> bool
val is_index : Ir.Types.t -> bool
val is_handle : string -> Ir.Types.t -> bool
val is_scalar : Ir.Types.t -> bool
