(** The [torch] dialect: the subset of ATen tensor operations used by
    CAM-amenable kernels, including the paper's frontend extension for
    [norm] and [topk] (Section III-C).

    All ops have value (tensor) semantics. Shape inference helpers are
    exported for use by the TorchScript frontend. *)

val transpose_name : string
val matmul_name : string
val mm_name : string
val sub_name : string
val div_name : string
val norm_name : string
val topk_name : string
val return_name : string
(** ["func.return"] — terminator shared by all abstraction levels. *)

(** {1 Shape inference} *)

val transpose_shape : int list -> d0:int -> d1:int -> int list
(** Shape after swapping dims [d0] and [d1] (negative dims count from the
    end, as in PyTorch). @raise Invalid_argument when out of range. *)

val matmul_shape : int list -> int list -> int list
(** 2-D matrix product shape. @raise Invalid_argument on mismatch. *)

val broadcast_shape : int list -> int list -> int list
(** Elementwise broadcast rules of the accepted subset: equal shapes,
    [[Q;1;D]] against [[N;D]] (the batched-KNN idiom, giving
    [[Q;N;D]]), a 1-row operand against an [[N;D]] tensor, and a
    per-row/per-column divisor against a matrix.
    @raise Invalid_argument otherwise. *)

val norm_shape : int list -> dim:int -> keepdim:bool -> int list
(** Reduction along [dim]. *)

val topk_shape : int list -> k:int -> dim:int -> int list

(** {1 Builders} — each appends one op and returns its result value(s). *)

val transpose :
  Ir.Builder.t -> Ir.Value.t -> d0:int -> d1:int -> Ir.Value.t

val matmul : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val mm : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val sub : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val div : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t

val div3 :
  Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
(** [div3 b x nq ns] — the fused ternary division of the paper's cosine
    pattern: divide the [Q x N] score matrix [x] by the per-query norms
    [nq] (Q elements) and per-stored norms [ns] (N elements). *)

val norm :
  Ir.Builder.t -> Ir.Value.t -> p:int -> dim:int -> keepdim:bool ->
  Ir.Value.t

val topk :
  Ir.Builder.t -> Ir.Value.t -> k:int -> dim:int -> largest:bool ->
  Ir.Value.t * Ir.Value.t
(** Returns [(values, indices)]; indices are an [i32] tensor. *)

val return_ : Ir.Builder.t -> Ir.Value.t list -> unit

val register : unit -> unit
(** Register the dialect ops in {!Ir.Registry}. Idempotent. *)
