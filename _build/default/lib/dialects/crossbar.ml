open Vhelp

let alloc_tile_name = "crossbar.alloc_tile"
let write_name = "crossbar.write"
let gemv_name = "crossbar.gemv"
let accumulate_name = "crossbar.accumulate"
let tile_type = Ir.Types.Handle "crossbar.tile_id"

let alloc_tile b = Ir.Builder.op1 b alloc_tile_name tile_type

let write b tile block =
  Ir.Builder.op0 b ~operands:[ tile; block ] write_name

let gemv b tile inputs ~rows =
  let m = List.hd (Ir.Types.shape inputs.Ir.Value.ty) in
  Ir.Builder.op1 b ~operands:[ tile; inputs ] gemv_name
    (Ir.Types.memref [ m; rows ] Ir.Types.F32)

let accumulate b ~dst ~part =
  Ir.Builder.op0 b ~operands:[ dst; part ] accumulate_name

let verify_alloc op =
  operands op 0 >>> fun () ->
  results op 1 >>> fun () ->
  result_is op 0 (is_handle "crossbar.tile_id") "!crossbar.tile_id"

let verify_write op =
  operands op 2 >>> fun () ->
  results op 0 >>> fun () ->
  operand_is op 0 (is_handle "crossbar.tile_id") "!crossbar.tile_id"
  >>> fun () -> operand_is op 1 is_memref "a weight-block memref"

let verify_gemv op =
  operands op 2 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 (is_handle "crossbar.tile_id") "!crossbar.tile_id"
  >>> fun () ->
  operand_is op 1 is_memref "an input memref" >>> fun () ->
  result_is op 0 is_memref "an output memref"

let verify_accumulate op =
  operands op 2 >>> fun () ->
  results op 0 >>> fun () ->
  operand_is op 0 is_memref "a memref" >>> fun () ->
  operand_is op 1 is_memref "a memref"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"crossbar" ~mnemonic ~summary ~verify ()
  in
  reg "alloc_tile" "allocate a crossbar tile" verify_alloc;
  reg "write" "program a weight block into a tile" verify_write;
  reg "gemv" "analog matrix-vector product against the stored block"
    verify_gemv;
  reg "accumulate" "digital partial-sum accumulation" verify_accumulate
