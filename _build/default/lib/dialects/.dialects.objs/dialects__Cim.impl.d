lib/dialects/cim.ml: Ir List String Vhelp
