lib/dialects/arith.ml: Ir List Vhelp
