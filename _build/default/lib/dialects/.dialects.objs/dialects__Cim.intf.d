lib/dialects/cim.mli: Ir
