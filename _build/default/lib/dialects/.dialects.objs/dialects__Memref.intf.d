lib/dialects/memref.mli: Ir
