lib/dialects/crossbar.mli: Ir
