lib/dialects/vhelp.mli: Ir
