lib/dialects/crossbar.ml: Ir List Vhelp
