lib/dialects/vhelp.ml: Ir List Printf String
