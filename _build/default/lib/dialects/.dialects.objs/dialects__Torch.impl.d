lib/dialects/torch.ml: Array Ir List Printf String Vhelp
