lib/dialects/cam.ml: Ir List Vhelp
