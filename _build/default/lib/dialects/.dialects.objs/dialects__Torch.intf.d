lib/dialects/torch.mli: Ir
