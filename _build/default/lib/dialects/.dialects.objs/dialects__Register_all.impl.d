lib/dialects/register_all.ml: Arith Cam Cim Crossbar Memref Scf Torch
