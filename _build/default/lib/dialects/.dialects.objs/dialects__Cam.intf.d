lib/dialects/cam.mli: Ir
