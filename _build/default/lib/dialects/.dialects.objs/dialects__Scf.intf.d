lib/dialects/scf.mli: Ir
