lib/dialects/register_all.mli:
