lib/dialects/arith.mli: Ir
