lib/dialects/scf.ml: Ir List Vhelp
