lib/dialects/memref.ml: Ir List Vhelp
