(** The [scf] dialect: structured control flow. [scf.for] iterations are
    sequential (latencies add up in the interpreter); [scf.parallel]
    iterations run concurrently (latencies max-combine). *)

val for_name : string
val parallel_name : string
val if_name : string
val yield_name : string

val for_ :
  Ir.Builder.t -> lb:Ir.Value.t -> ub:Ir.Value.t -> step:Ir.Value.t ->
  (Ir.Builder.t -> Ir.Value.t -> unit) -> unit
(** [for_ b ~lb ~ub ~step body] — [body] receives an inner builder and
    the induction variable (an [index] block argument). *)

val parallel :
  Ir.Builder.t -> lb:Ir.Value.t -> ub:Ir.Value.t -> step:Ir.Value.t ->
  (Ir.Builder.t -> Ir.Value.t -> unit) -> unit

val loop_of_mode :
  [ `Sequential | `Parallel ] ->
  Ir.Builder.t -> lb:Ir.Value.t -> ub:Ir.Value.t -> step:Ir.Value.t ->
  (Ir.Builder.t -> Ir.Value.t -> unit) -> unit
(** Pick {!for_} or {!parallel} from an access mode. *)

val if_ : Ir.Builder.t -> Ir.Value.t -> (Ir.Builder.t -> unit) -> unit
(** [if_ b cond body] — no else branch, no results. *)

val yield : Ir.Builder.t -> unit

val register : unit -> unit
