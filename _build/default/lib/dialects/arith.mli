(** The [arith] dialect: index arithmetic and constants used by the
    loop-nest code emitted by [cam-map]. *)

val constant_name : string
val cmpi_name : string

val const_index : Ir.Builder.t -> int -> Ir.Value.t
val const_f32 : Ir.Builder.t -> float -> Ir.Value.t

val addi : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val subi : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val muli : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val divi : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val remi : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t

type pred = Lt | Le | Eq | Ne | Gt | Ge

val pred_to_attr : pred -> Ir.Attr.t
val pred_of_attr : Ir.Attr.t -> pred

val cmpi : Ir.Builder.t -> pred -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
(** Index comparison producing an [i1]. *)

(** {1 Scalar float arithmetic} — the host (loop-dialect) lowering. *)

val addf : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val subf : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val mulf : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val divf : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
val cmpf : Ir.Builder.t -> pred -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t

val select : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
(** [select b cond x y] is [x] when [cond] holds, else [y]. *)

val register : unit -> unit
