open Vhelp

let transpose_name = "torch.transpose"
let matmul_name = "torch.matmul"
let mm_name = "torch.mm"
let sub_name = "torch.sub"
let div_name = "torch.div"
let norm_name = "torch.norm"
let topk_name = "torch.topk"
let return_name = "func.return"

let normalize_dim rank d =
  let d' = if d < 0 then rank + d else d in
  if d' < 0 || d' >= rank then
    invalid_arg (Printf.sprintf "dim %d out of range for rank %d" d rank);
  d'

let transpose_shape shape ~d0 ~d1 =
  let rank = List.length shape in
  let d0 = normalize_dim rank d0 and d1 = normalize_dim rank d1 in
  let arr = Array.of_list shape in
  let tmp = arr.(d0) in
  arr.(d0) <- arr.(d1);
  arr.(d1) <- tmp;
  Array.to_list arr

let matmul_shape a b =
  match (a, b) with
  | [ m; k1 ], [ k2; n ] when k1 = k2 -> [ m; n ]
  | _ ->
      invalid_arg
        (Printf.sprintf "matmul: incompatible shapes [%s] x [%s]"
           (String.concat ";" (List.map string_of_int a))
           (String.concat ";" (List.map string_of_int b)))

let norm_shape shape ~dim ~keepdim =
  let rank = List.length shape in
  let dim = normalize_dim rank dim in
  List.concat
    (List.mapi
       (fun i d ->
         if i = dim then if keepdim then [ 1 ] else [] else [ d ])
       shape)

let topk_shape shape ~k ~dim =
  let rank = List.length shape in
  let dim = normalize_dim rank dim in
  List.mapi (fun i d -> if i = dim then k else d) shape

let broadcast_shape a b =
  match (a, b) with
  | _ when a = b -> a
  | [ q; 1; d1 ], [ _; d2 ] when d1 = d2 ->
      (* batched KNN idiom: [Q,1,D] (-) [N,D] -> [Q,N,D] *)
      [ q; List.hd b; d1 ]
  | [ n; d1 ], [ 1; d2 ] when d1 = d2 -> [ n; d1 ]
  | [ 1; d1 ], [ n; d2 ] when d1 = d2 -> [ n; d1 ]
  | [ q; n ], [ q'; 1 ] when q = q' -> [ q; n ]
  | [ q; n ], [ 1; n' ] when n = n' -> [ q; n ]
  | _ ->
      invalid_arg
        (Printf.sprintf "unsupported broadcast: [%s] vs [%s]"
           (String.concat ";" (List.map string_of_int a))
           (String.concat ";" (List.map string_of_int b)))

let tensor_elem (v : Ir.Value.t) = Ir.Types.element v.ty

let transpose b x ~d0 ~d1 =
  let shape = transpose_shape (Ir.Types.shape x.Ir.Value.ty) ~d0 ~d1 in
  Ir.Builder.op1 b ~operands:[ x ]
    ~attrs:[ ("dims", Ir.Attr.Ints [ d0; d1 ]) ]
    transpose_name
    (Ir.Types.tensor shape (tensor_elem x))

let binary name b x y result_shape =
  Ir.Builder.op1 b ~operands:[ x; y ] name
    (Ir.Types.tensor result_shape (tensor_elem x))

let matmul b x y =
  binary matmul_name b x y
    (matmul_shape (Ir.Types.shape x.Ir.Value.ty) (Ir.Types.shape y.Ir.Value.ty))

let mm b x y =
  binary mm_name b x y
    (matmul_shape (Ir.Types.shape x.Ir.Value.ty) (Ir.Types.shape y.Ir.Value.ty))

let sub b x y =
  binary sub_name b x y
    (broadcast_shape (Ir.Types.shape x.Ir.Value.ty)
       (Ir.Types.shape y.Ir.Value.ty))

let div b x y =
  binary div_name b x y
    (broadcast_shape (Ir.Types.shape x.Ir.Value.ty)
       (Ir.Types.shape y.Ir.Value.ty))

(* The fused ternary division of the paper's cosine pattern: divide the
   [Q,N] score matrix by a per-query norm (Q elements) and a per-stored
   norm (N elements) at once. *)
let div3 b x nq ns =
  Ir.Builder.op1 b ~operands:[ x; nq; ns ] div_name
    (Ir.Types.tensor (Ir.Types.shape x.Ir.Value.ty) (tensor_elem x))

let norm b x ~p ~dim ~keepdim =
  let shape = norm_shape (Ir.Types.shape x.Ir.Value.ty) ~dim ~keepdim in
  Ir.Builder.op1 b ~operands:[ x ]
    ~attrs:
      [ ("p", Ir.Attr.Int p);
        ("dim", Ir.Attr.Int dim);
        ("keepdim", Ir.Attr.Bool keepdim);
      ]
    norm_name
    (Ir.Types.tensor shape (tensor_elem x))

let topk b x ~k ~dim ~largest =
  let shape = topk_shape (Ir.Types.shape x.Ir.Value.ty) ~k ~dim in
  match
    Ir.Builder.op b ~operands:[ x ]
      ~attrs:
        [ ("k", Ir.Attr.Int k);
          ("dim", Ir.Attr.Int dim);
          ("largest", Ir.Attr.Bool largest);
        ]
      topk_name
      [ Ir.Types.tensor shape (tensor_elem x);
        Ir.Types.tensor shape Ir.Types.I32;
      ]
  with
  | [ values; indices ] -> (values, indices)
  | _ -> assert false

let return_ b vs = Ir.Builder.op0 b ~operands:vs return_name

(* Verifiers *)

let verify_unary_tensor op =
  operands op 1 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 is_tensor "a tensor" >>> fun () ->
  result_is op 0 is_tensor "a tensor"

let verify_binary_tensor op =
  operands op 2 >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 is_tensor "a tensor" >>> fun () ->
  operand_is op 1 is_tensor "a tensor" >>> fun () ->
  result_is op 0 is_tensor "a tensor"

let verify_div op =
  check
    (let n = List.length op.Ir.Op.operands in
     n = 2 || n = 3)
    "div takes two operands, or three in the fused cosine form"
  >>> fun () ->
  results op 1 >>> fun () ->
  operand_is op 0 is_tensor "a tensor" >>> fun () ->
  result_is op 0 is_tensor "a tensor"

let verify_transpose op =
  verify_unary_tensor op >>> fun () ->
  has_attr op "dims" >>> fun () ->
  check
    (List.length (Ir.Attr.as_ints (Ir.Op.attr_exn op "dims")) = 2)
    "dims must have exactly two entries"

let verify_matmul op =
  verify_binary_tensor op >>> fun () ->
  let a = Ir.Types.shape (Ir.Op.operand op 0).ty in
  let b = Ir.Types.shape (Ir.Op.operand op 1).ty in
  match (a, b) with
  | [ _; k1 ], [ k2; _ ] ->
      check (k1 = k2) "matmul: inner dimensions disagree"
  | _ -> Error "matmul: operands must be rank-2 tensors"

let verify_norm op =
  verify_unary_tensor op >>> fun () ->
  has_attr op "p" >>> fun () ->
  has_attr op "dim"

let verify_topk op =
  operands op 1 >>> fun () ->
  results op 2 >>> fun () ->
  has_attr op "k" >>> fun () ->
  operand_is op 0 is_tensor "a tensor" >>> fun () ->
  let k = Ir.Attr.as_int (Ir.Op.attr_exn op "k") in
  check (k >= 1) "topk: k must be positive"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"torch" ~mnemonic ~summary ~verify ()
  in
  reg "transpose" "swap two tensor dimensions" verify_transpose;
  reg "matmul" "2-D matrix product" verify_matmul;
  reg "mm" "2-D matrix product (no broadcasting)" verify_matmul;
  reg "sub" "elementwise subtraction (with KNN broadcast)"
    verify_binary_tensor;
  reg "div" "elementwise division (binary or fused cosine)" verify_div;
  reg "norm" "vector norm reduction along a dimension" verify_norm;
  reg "topk" "k smallest/largest entries with indices" verify_topk;
  Ir.Registry.register_op ~dialect:"func" ~mnemonic:"return"
    ~summary:"function terminator" ()
