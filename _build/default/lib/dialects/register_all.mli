(** Registers every dialect of the project in {!Ir.Registry}. *)

val register_all : unit -> unit
(** Idempotent; call before verifying or parsing modules strictly. *)
