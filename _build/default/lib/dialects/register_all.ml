let register_all () =
  Torch.register ();
  Cim.register ();
  Cam.register ();
  Scf.register ();
  Arith.register ();
  Memref.register ();
  Crossbar.register ()
