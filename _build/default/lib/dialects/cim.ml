open Vhelp

let acquire_name = "cim.acquire"
let execute_name = "cim.execute"
let release_name = "cim.release"
let yield_name = "cim.yield"
let similarity_name = "cim.similarity"
let similarity_partial_name = "cim.similarity_partial"
let slice_name = "cim.slice"
let merge_partial_name = "cim.merge_partial"
let select_best_name = "cim.select_best"
let partitioned_similarity_name = "cim.partitioned_similarity"

let compute_mnemonics =
  [ "transpose"; "matmul"; "mm"; "sub"; "div"; "norm"; "topk" ]

let compute_op_names = List.map (fun m -> "cim." ^ m) compute_mnemonics

let torch_twin name =
  match String.index_opt name '.' with
  | Some i when String.sub name 0 i = "torch" ->
      let m = String.sub name (i + 1) (String.length name - i - 1) in
      if List.mem m compute_mnemonics then Some ("cim." ^ m) else None
  | _ -> None

type metric = Dot | Euclidean | Cosine | Hamming

let metric_to_attr = function
  | Dot -> Ir.Attr.Sym "dot"
  | Euclidean -> Ir.Attr.Sym "euclidean"
  | Cosine -> Ir.Attr.Sym "cosine"
  | Hamming -> Ir.Attr.Sym "hamming"

let metric_of_attr a =
  match Ir.Attr.as_sym a with
  | "dot" -> Dot
  | "euclidean" -> Euclidean
  | "cosine" -> Cosine
  | "hamming" -> Hamming
  | s -> invalid_arg ("unknown metric #" ^ s)

let device_type = Ir.Types.Handle "cim.device"

let acquire b ~device =
  Ir.Builder.op1 b ~attrs:[ ("device", Ir.Attr.Str device) ] acquire_name
    device_type

let execute b dev ~body ~results =
  Ir.Builder.op b ~operands:[ dev ] ~regions:[ Ir.Op.region body ]
    execute_name results

let yield b vs = Ir.Builder.op0 b ~operands:vs yield_name
let release b dev = Ir.Builder.op0 b ~operands:[ dev ] release_name

let similarity_results b name ~operands ~attrs ~q ~k =
  match
    Ir.Builder.op b ~operands ~attrs name
      [ Ir.Types.tensor [ q; k ] Ir.Types.F32;
        Ir.Types.tensor [ q; k ] Ir.Types.I32;
      ]
  with
  | [ values; indices ] -> (values, indices)
  | _ -> assert false

let similarity b ~query ~stored ~metric ~k ~largest =
  let q = List.hd (Ir.Types.shape query.Ir.Value.ty) in
  similarity_results b similarity_name ~operands:[ query; stored ]
    ~attrs:
      [ ("metric", metric_to_attr metric);
        ("k", Ir.Attr.Int k);
        ("largest", Ir.Attr.Bool largest);
      ]
    ~q ~k

let similarity_partial b ~query ~stored ~metric =
  let q = List.hd (Ir.Types.shape query.Ir.Value.ty) in
  let n' = List.hd (Ir.Types.shape stored.Ir.Value.ty) in
  Ir.Builder.op1 b ~operands:[ query; stored ]
    ~attrs:[ ("metric", metric_to_attr metric) ]
    similarity_partial_name
    (Ir.Types.tensor [ q; n' ] Ir.Types.F32)

let slice b x ~offsets ~sizes =
  Ir.Builder.op1 b ~operands:[ x ]
    ~attrs:[ ("offsets", Ir.Attr.Ints offsets); ("sizes", Ir.Attr.Ints sizes) ]
    slice_name
    (Ir.Types.with_shape x.Ir.Value.ty sizes)

let merge_partial_h b acc part =
  Ir.Builder.op1 b ~operands:[ acc; part ]
    ~attrs:[ ("direction", Ir.Attr.Sym "horizontal"); ("kind", Ir.Attr.Sym "add") ]
    merge_partial_name acc.Ir.Value.ty

let merge_partial_v b global part ~offset =
  Ir.Builder.op1 b ~operands:[ global; part ]
    ~attrs:
      [ ("direction", Ir.Attr.Sym "vertical");
        ("kind", Ir.Attr.Sym "write");
        ("offset", Ir.Attr.Int offset);
      ]
    merge_partial_name global.Ir.Value.ty

let similarity_scores_name = "cim.similarity_scores"
let zeros_name = "cim.zeros"
let reshape_name = "cim.reshape"

let reshape b x shape =
  Ir.Builder.op1 b ~operands:[ x ]
    ~attrs:[ ("shape", Ir.Attr.Ints shape) ]
    reshape_name
    (Ir.Types.tensor shape (Ir.Types.element x.Ir.Value.ty))

let zeros b shape =
  Ir.Builder.op1 b zeros_name (Ir.Types.tensor shape Ir.Types.F32)

let select_best b dist ~k ~largest =
  let q = List.hd (Ir.Types.shape dist.Ir.Value.ty) in
  similarity_results b select_best_name ~operands:[ dist ]
    ~attrs:[ ("k", Ir.Attr.Int k); ("largest", Ir.Attr.Bool largest) ]
    ~q ~k

(* Verifiers *)

let verify_acquire op =
  operands op 0 >>> fun () ->
  results op 1 >>> fun () ->
  has_attr op "device" >>> fun () ->
  result_is op 0 (is_handle "cim.device") "!cim.device"

let verify_execute op =
  check (List.length op.Ir.Op.operands >= 1) "execute needs a device operand"
  >>> fun () ->
  operand_is op 0 (is_handle "cim.device") "!cim.device" >>> fun () ->
  check (List.length op.Ir.Op.regions = 1) "execute needs exactly one region"
  >>> fun () ->
  match List.rev (Ir.Op.body_ops op) with
  | last :: _ when String.equal last.Ir.Op.op_name yield_name ->
      check
        (List.length last.Ir.Op.operands = List.length op.Ir.Op.results)
        "yield arity must match execute results"
  | _ -> Error "execute region must end in cim.yield"

let verify_release op =
  operands op 1 >>> fun () ->
  results op 0 >>> fun () ->
  operand_is op 0 (is_handle "cim.device") "!cim.device"

let verify_similarity op =
  operands op 2 >>> fun () ->
  results op 2 >>> fun () ->
  has_attr op "metric" >>> fun () ->
  has_attr op "k" >>> fun () ->
  operand_is op 0 is_tensor "query tensor" >>> fun () ->
  operand_is op 1 is_tensor "stored tensor" >>> fun () ->
  let qshape = Ir.Types.shape (Ir.Op.operand op 0).ty in
  let sshape = Ir.Types.shape (Ir.Op.operand op 1).ty in
  match (qshape, sshape) with
  | [ _; d1 ], [ _; d2 ] ->
      check (d1 = d2) "similarity: query and stored dims disagree"
  | _ -> Error "similarity: operands must be rank-2 tensors"

let verify_slice op =
  operands op 1 >>> fun () ->
  results op 1 >>> fun () ->
  has_attr op "offsets" >>> fun () ->
  has_attr op "sizes" >>> fun () ->
  let offsets = Ir.Attr.as_ints (Ir.Op.attr_exn op "offsets") in
  let sizes = Ir.Attr.as_ints (Ir.Op.attr_exn op "sizes") in
  let shape = Ir.Types.shape (Ir.Op.operand op 0).ty in
  check
    (List.length offsets = List.length shape
    && List.length sizes = List.length shape)
    "slice: offsets/sizes rank mismatch"
  >>> fun () ->
  check
    (List.for_all2 (fun (o, s) d -> o >= 0 && s >= 1 && o + s <= d)
       (List.combine offsets sizes) shape)
    "slice: out of bounds"

let verify_merge op =
  operands op 2 >>> fun () ->
  results op 1 >>> fun () ->
  has_attr op "direction"

let verify_select_best op =
  operands op 1 >>> fun () ->
  results op 2 >>> fun () ->
  has_attr op "k"

let verify_partitioned op =
  check (List.length op.Ir.Op.regions = 1)
    "partitioned_similarity needs its expanded region"
  >>> fun () ->
  has_attr op "rows" >>> fun () ->
  has_attr op "cols" >>> fun () ->
  has_attr op "metric" >>> fun () -> has_attr op "k"

let register () =
  let reg mnemonic summary verify =
    Ir.Registry.register_op ~dialect:"cim" ~mnemonic ~summary ~verify ()
  in
  reg "acquire" "allocate a CIM device handle" verify_acquire;
  reg "execute" "run a block of ops on a CIM device" verify_execute;
  reg "release" "release a CIM device handle" verify_release;
  reg "yield" "execute-region terminator" (fun _ -> Ok ());
  reg "similarity" "fused k-nearest search (Algorithm 1 result)"
    verify_similarity;
  reg "similarity_partial" "per-tile partial distances" (fun op ->
      operands op 2 >>> fun () -> results op 1);
  reg "slice" "static tensor slice (partitioning)" verify_slice;
  reg "merge_partial" "combine partial results" verify_merge;
  reg "select_best" "final top-k selection over merged distances"
    verify_select_best;
  reg "zeros" "zero-filled tensor (partial-result accumulator seed)"
    (fun op -> operands op 0 >>> fun () -> results op 1);
  reg "similarity_scores" "fused full similarity matrix (cosine pattern)"
    (fun op ->
      operands op 2 >>> fun () ->
      results op 1 >>> fun () -> has_attr op "metric");
  reg "reshape" "same-element-count shape change" (fun op ->
      operands op 1 >>> fun () ->
      results op 1 >>> fun () ->
      check
        (Ir.Types.num_elements (Ir.Op.operand op 0).ty
        = Ir.Types.num_elements (Ir.Op.result op).ty)
        "reshape: element count changes");
  reg "partitioned_similarity"
    "similarity partitioned to device-sized tiles" verify_partitioned;
  List.iter
    (fun m ->
      let summary = "cim twin of torch." ^ m in
      Ir.Registry.register_op ~dialect:"cim" ~mnemonic:m ~summary ())
    compute_mnemonics
