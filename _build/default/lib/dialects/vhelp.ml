let check cond msg = if cond then Ok () else Error msg

let ( >>> ) r f = match r with Ok () -> f () | Error _ as e -> e

let operands (op : Ir.Op.t) n =
  check
    (List.length op.operands = n)
    (Printf.sprintf "expected %d operands, got %d" n
       (List.length op.operands))

let results (op : Ir.Op.t) n =
  check
    (List.length op.results = n)
    (Printf.sprintf "expected %d results, got %d" n (List.length op.results))

let operand_is (op : Ir.Op.t) i pred desc =
  match List.nth_opt op.operands i with
  | None -> Error (Printf.sprintf "missing operand %d (%s)" i desc)
  | Some (v : Ir.Value.t) ->
      check (pred v.ty)
        (Printf.sprintf "operand %d must be %s, got %s" i desc
           (Ir.Types.to_string v.ty))

let result_is (op : Ir.Op.t) i pred desc =
  match List.nth_opt op.results i with
  | None -> Error (Printf.sprintf "missing result %d (%s)" i desc)
  | Some (v : Ir.Value.t) ->
      check (pred v.ty)
        (Printf.sprintf "result %d must be %s, got %s" i desc
           (Ir.Types.to_string v.ty))

let has_attr (op : Ir.Op.t) key =
  check (Ir.Attr.find op.attrs key <> None) ("missing attribute " ^ key)

let is_tensor = function Ir.Types.Tensor _ -> true | _ -> false
let is_memref = function Ir.Types.Memref _ -> true | _ -> false
let is_index = function Ir.Types.Index -> true | _ -> false

let is_handle name = function
  | Ir.Types.Handle h -> String.equal h name
  | _ -> false

let is_scalar = function Ir.Types.Scalar _ -> true | _ -> false
