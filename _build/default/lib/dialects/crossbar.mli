(** The [crossbar] dialect — the sibling device abstraction of Figure 3:
    resistive-crossbar tiles performing analog GEMV, targeted by cim
    blocks holding plain arithmetic (matmul) instead of search. *)

val alloc_tile_name : string
val write_name : string
val gemv_name : string
val accumulate_name : string

val tile_type : Ir.Types.t
(** [!crossbar.tile_id] *)

val alloc_tile : Ir.Builder.t -> Ir.Value.t
val write : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> unit
(** [write b tile block] programs a [k x n] weight block. *)

val gemv : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> rows:int -> Ir.Value.t
(** [gemv b tile inputs ~rows] — [inputs] is an [m x k] memref and
    [rows] the stored block's output width [n]; the result is a fresh
    [m x n] memref of partial products. *)

val accumulate : Ir.Builder.t -> dst:Ir.Value.t -> part:Ir.Value.t -> unit
(** In-place [dst += part] in the digital periphery. *)

val register : unit -> unit
