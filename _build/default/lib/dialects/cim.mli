(** The [cim] dialect: device-agnostic compute-in-memory abstraction
    (Section III-D1), extended for CAM accelerators.

    The programming model is [acquire] / [execute] / [release]. An
    [execute] op owns a single-block region whose ops reference outer SSA
    values freely; the region is terminated by [cim.yield] and the
    yielded values become the [execute] results. *)

val acquire_name : string
val execute_name : string
val release_name : string
val yield_name : string
val similarity_name : string
val similarity_partial_name : string
val slice_name : string
val merge_partial_name : string
val select_best_name : string
val partitioned_similarity_name : string

val compute_op_names : string list
(** The cim twins of the torch compute ops
    (["cim.transpose"], ["cim.matmul"], ...). *)

val torch_twin : string -> string option
(** Map a torch op name to its cim twin, e.g.
    ["torch.matmul"] -> [Some "cim.matmul"]. *)

type metric = Dot | Euclidean | Cosine | Hamming

val metric_to_attr : metric -> Ir.Attr.t
val metric_of_attr : Ir.Attr.t -> metric
(** @raise Invalid_argument on unknown metric symbols. *)

(** {1 Builders} *)

val device_type : Ir.Types.t
(** [!cim.device] *)

val acquire : Ir.Builder.t -> device:string -> Ir.Value.t

val execute :
  Ir.Builder.t -> Ir.Value.t -> body:Ir.Op.t list ->
  results:Ir.Types.t list -> Ir.Value.t list
(** [execute b dev ~body ~results] — [body] must end in [cim.yield]. *)

val yield : Ir.Builder.t -> Ir.Value.t list -> unit
val release : Ir.Builder.t -> Ir.Value.t -> unit

val similarity :
  Ir.Builder.t -> query:Ir.Value.t -> stored:Ir.Value.t -> metric:metric ->
  k:int -> largest:bool -> Ir.Value.t * Ir.Value.t

val similarity_partial :
  Ir.Builder.t -> query:Ir.Value.t -> stored:Ir.Value.t -> metric:metric ->
  Ir.Value.t
(** Partial distance block: query is [Q x C], stored is [N' x C]; result
    is the [Q x N'] distance tensor for this tile. *)

val slice :
  Ir.Builder.t -> Ir.Value.t -> offsets:int list -> sizes:int list ->
  Ir.Value.t

val merge_partial_h : Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> Ir.Value.t
(** Horizontal merge: add a tile's partial distances into the
    accumulator ([acc + part], value semantics). *)

val merge_partial_v :
  Ir.Builder.t -> Ir.Value.t -> Ir.Value.t -> offset:int -> Ir.Value.t
(** Vertical merge: write a row-chunk accumulator into the global
    distance tensor at row [offset]. *)

val select_best :
  Ir.Builder.t -> Ir.Value.t -> k:int -> largest:bool ->
  Ir.Value.t * Ir.Value.t

val similarity_scores_name : string
(** Fused form of the 6-op cosine pattern: returns the full [Q x N]
    score (distance) matrix instead of a top-k selection. *)

val zeros_name : string

val zeros : Ir.Builder.t -> int list -> Ir.Value.t
(** Zero-filled [f32] tensor, seeding partial-result accumulation. *)

val reshape_name : string

val reshape : Ir.Builder.t -> Ir.Value.t -> int list -> Ir.Value.t
(** Same-element-count shape change (e.g. squeezing the broadcast
    dimension of a batched KNN query). *)

val register : unit -> unit
