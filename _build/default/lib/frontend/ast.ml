type expr =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Call of string * expr list * (string * expr) list
  | Method of expr * string * expr list * (string * expr) list
  | Binop of binop * expr * expr

and binop = Bsub | Bdiv

type stmt = Assign of string list * expr | Return of expr list

type func = {
  f_name : string;
  f_params : (string * int list) list;
  f_body : stmt list;
}

type program = func list

let rec expr_to_string = function
  | Var v -> v
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Bool_lit b -> if b then "True" else "False"
  | Call (path, args, kwargs) ->
      Printf.sprintf "%s(%s)" path (args_to_string args kwargs)
  | Method (recv, m, args, kwargs) ->
      Printf.sprintf "%s.%s(%s)" (expr_to_string recv) m
        (args_to_string args kwargs)
  | Binop (Bsub, a, b) ->
      Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Binop (Bdiv, a, b) ->
      Printf.sprintf "(%s / %s)" (expr_to_string a) (expr_to_string b)

and args_to_string args kwargs =
  String.concat ", "
    (List.map expr_to_string args
    @ List.map (fun (k, v) -> k ^ "=" ^ expr_to_string v) kwargs)

let stmt_to_string = function
  | Assign (targets, e) ->
      String.concat ", " targets ^ " = " ^ expr_to_string e
  | Return es ->
      "return " ^ String.concat ", " (List.map expr_to_string es)
