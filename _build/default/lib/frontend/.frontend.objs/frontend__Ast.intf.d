lib/frontend/ast.mli:
