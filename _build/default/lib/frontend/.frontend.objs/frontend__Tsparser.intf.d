lib/frontend/tsparser.mli: Ast
