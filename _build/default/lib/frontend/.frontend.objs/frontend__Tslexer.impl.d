lib/frontend/tslexer.ml: Array List Printf String
