lib/frontend/tsparser.ml: Array Ast List Printf String Tslexer
