lib/frontend/tslexer.mli:
