lib/frontend/emit.ml: Ast Dialects Hashtbl Ir List Printf String Tsparser
