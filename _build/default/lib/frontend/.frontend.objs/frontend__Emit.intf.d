lib/frontend/emit.mli: Ast Ir
