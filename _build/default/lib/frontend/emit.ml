exception Emit_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Emit_error s)) fmt

type env = (string, Ir.Value.t) Hashtbl.t

let lookup env name =
  match Hashtbl.find_opt env name with
  | Some v -> v
  | None -> fail "unknown variable %s" name

(* Extract a literal int argument (op parameters like k and dims must be
   compile-time constants for shape inference). *)
let as_int name = function
  | Ast.Int_lit i -> i
  | e -> fail "%s must be an integer literal, got %s" name (Ast.expr_to_string e)

let as_bool name = function
  | Ast.Bool_lit b -> b
  | e -> fail "%s must be True or False, got %s" name (Ast.expr_to_string e)

let kwarg kwargs key = List.assoc_opt key kwargs

let mnemonic_of_path path =
  (* torch.matmul, torch.ops.aten.topk, ... -> matmul, topk *)
  match List.rev (String.split_on_char '.' path) with
  | m :: _ -> m
  | [] -> fail "empty call path"

type emitted = Single of Ir.Value.t | Pair of Ir.Value.t * Ir.Value.t

let rec emit_expr b env (e : Ast.expr) : emitted =
  match e with
  | Ast.Var v -> Single (lookup env v)
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ ->
      fail "literal %s cannot be used as a tensor" (Ast.expr_to_string e)
  | Ast.Binop (Ast.Bsub, x, y) ->
      Single (Dialects.Torch.sub b (emit_tensor b env x) (emit_tensor b env y))
  | Ast.Binop (Ast.Bdiv, x, y) ->
      Single (Dialects.Torch.div b (emit_tensor b env x) (emit_tensor b env y))
  | Ast.Call (path, args, kwargs) ->
      emit_call b env (mnemonic_of_path path) args kwargs
  | Ast.Method (recv, m, args, kwargs) ->
      emit_call b env m (recv :: args) kwargs

and emit_tensor b env e =
  match emit_expr b env e with
  | Single v -> v
  | Pair _ ->
      fail "%s produces two values where one tensor is expected"
        (Ast.expr_to_string e)

and emit_call b env mnemonic args kwargs : emitted =
  let tensor_arg n i =
    match List.nth_opt args i with
    | Some e -> emit_tensor b env e
    | None -> fail "%s: missing argument %d" n i
  in
  match mnemonic with
  | "transpose" -> (
      match args with
      | [ x; d0; d1 ] ->
          Single
            (Dialects.Torch.transpose b (emit_tensor b env x)
               ~d0:(as_int "transpose dim" d0)
               ~d1:(as_int "transpose dim" d1))
      | _ -> fail "transpose expects (tensor, dim0, dim1)")
  | "matmul" -> Single (Dialects.Torch.matmul b (tensor_arg "matmul" 0) (tensor_arg "matmul" 1))
  | "mm" -> Single (Dialects.Torch.mm b (tensor_arg "mm" 0) (tensor_arg "mm" 1))
  | "sub" -> Single (Dialects.Torch.sub b (tensor_arg "sub" 0) (tensor_arg "sub" 1))
  | "div" ->
      if List.length args = 3 then
        Single
          (Dialects.Torch.div3 b (tensor_arg "div" 0) (tensor_arg "div" 1)
             (tensor_arg "div" 2))
      else
        Single
          (Dialects.Torch.div b (tensor_arg "div" 0) (tensor_arg "div" 1))
  | "norm" ->
      let x = tensor_arg "norm" 0 in
      let p =
        match (List.nth_opt args 1, kwarg kwargs "p") with
        | Some e, _ | None, Some e -> as_int "norm p" e
        | None, None -> 2
      in
      let dim =
        match (List.nth_opt args 2, kwarg kwargs "dim") with
        | Some e, _ | None, Some e -> as_int "norm dim" e
        | None, None -> -1
      in
      let keepdim =
        match kwarg kwargs "keepdim" with
        | Some e -> as_bool "norm keepdim" e
        | None -> false
      in
      Single (Dialects.Torch.norm b x ~p ~dim ~keepdim)
  | "topk" ->
      let x = tensor_arg "topk" 0 in
      let k =
        match (List.nth_opt args 1, kwarg kwargs "k") with
        | Some e, _ | None, Some e -> as_int "topk k" e
        | None, None -> fail "topk needs k"
      in
      let dim =
        match (List.nth_opt args 2, kwarg kwargs "dim") with
        | Some e, _ | None, Some e -> as_int "topk dim" e
        | None, None -> -1
      in
      let largest =
        match (List.nth_opt args 3, kwarg kwargs "largest") with
        | Some e, _ | None, Some e -> as_bool "topk largest" e
        | None, None -> true
      in
      let values, indices = Dialects.Torch.topk b x ~k ~dim ~largest in
      Pair (values, indices)
  | m -> fail "unsupported operation: %s" m

let emit_stmt b env (s : Ast.stmt) : Ir.Value.t list option =
  match s with
  | Ast.Assign (targets, e) -> (
      match (targets, emit_expr b env e) with
      | [ t ], Single v ->
          Hashtbl.replace env t v;
          None
      | [ tv; ti ], Pair (v, i) ->
          Hashtbl.replace env tv v;
          Hashtbl.replace env ti i;
          None
      | ts, Single _ ->
          fail "cannot unpack a single value into %d targets"
            (List.length ts)
      | ts, Pair _ ->
          fail "cannot unpack two values into %d targets" (List.length ts))
  | Ast.Return es ->
      let vs =
        List.concat_map
          (fun e ->
            match emit_expr b env e with
            | Single v -> [ v ]
            | Pair (v, i) -> [ v; i ])
          es
      in
      Some vs

let emit_func (f : Ast.func) : Ir.Func_ir.func =
  let env : env = Hashtbl.create 16 in
  let args =
    List.map
      (fun (name, shape) ->
        if List.exists (fun d -> d <= 0) shape then
          fail "parameter %s: dimensions must be positive" name;
        let v = Ir.Value.fresh (Ir.Types.tensor shape Ir.Types.F32) in
        Hashtbl.replace env name v;
        v)
      f.Ast.f_params
  in
  let b = Ir.Builder.create () in
  let returned = ref None in
  List.iter
    (fun s ->
      if !returned <> None then fail "statements after return";
      (* Shape inference failures in the op builders surface as
         Invalid_argument; report them as front-end errors. *)
      match emit_stmt b env s with
      | Some vs -> returned := Some vs
      | None -> ()
      | exception Invalid_argument msg ->
          fail "in '%s': %s" (Ast.stmt_to_string s) msg)
    f.f_body;
  let ret_values =
    match !returned with
    | Some vs -> vs
    | None -> fail "function %s does not return" f.f_name
  in
  Dialects.Torch.return_ b ret_values;
  Ir.Func_ir.func f.f_name ~args
    ~ret:(List.map (fun (v : Ir.Value.t) -> v.ty) ret_values)
    (Ir.Builder.finish b)

let program (p : Ast.program) = Ir.Func_ir.modul (List.map emit_func p)

let compile_string src =
  Dialects.Register_all.register_all ();
  let m = program (Tsparser.parse_program src) in
  (match Ir.Verifier.verify_module ~strict:true m with
  | Ok () -> ()
  | Error e -> fail "%s" (Ir.Verifier.error_to_string e));
  m
