type token =
  | DEF
  | RETURN
  | NAME of string
  | INT of int
  | FLOAT of float
  | TRUE
  | FALSE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUAL
  | MINUS
  | SLASH
  | ARROW
  | DOT
  | NEWLINE
  | INDENT
  | EOF

exception Lex_error of string * int

let token_to_string = function
  | DEF -> "def"
  | RETURN -> "return"
  | NAME s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | TRUE -> "True"
  | FALSE -> "False"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | EQUAL -> "="
  | MINUS -> "-"
  | SLASH -> "/"
  | ARROW -> "->"
  | DOT -> "."
  | NEWLINE -> "<newline>"
  | INDENT -> "<indent>"
  | EOF -> "<eof>"

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let line = ref 1 in
  let pos = ref 0 in
  let at_line_start = ref true in
  let line_has_tokens = ref false in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let end_line () =
    if !line_has_tokens then emit NEWLINE;
    line_has_tokens := false;
    at_line_start := true;
    incr line
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then (
      end_line ();
      incr pos)
    else if c = ' ' || c = '\t' || c = '\r' then (
      if !at_line_start && not !line_has_tokens then (
        (* Consume the whole indentation run as a single INDENT. *)
        while
          !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t')
        do
          incr pos
        done;
        if !pos < n && src.[!pos] <> '\n' && src.[!pos] <> '#' then (
          emit INDENT;
          line_has_tokens := true);
        at_line_start := false)
      else incr pos)
    else begin
      if !at_line_start then at_line_start := false;
      line_has_tokens := true;
      if c = '#' then
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
      else if c = '(' then (emit LPAREN; incr pos)
      else if c = ')' then (emit RPAREN; incr pos)
      else if c = '[' then (emit LBRACKET; incr pos)
      else if c = ']' then (emit RBRACKET; incr pos)
      else if c = ',' then (emit COMMA; incr pos)
      else if c = ':' then (emit COLON; incr pos)
      else if c = '=' then (emit EQUAL; incr pos)
      else if c = '/' then (emit SLASH; incr pos)
      else if c = '.' && not (match peek 1 with Some d -> is_digit d | None -> false)
      then (emit DOT; incr pos)
      else if c = '-' then
        if peek 1 = Some '>' then (
          emit ARROW;
          pos := !pos + 2)
        else (emit MINUS; incr pos)
      else if is_digit c || c = '.' then begin
        let start = !pos in
        let is_float = ref false in
        while
          !pos < n
          && (is_digit src.[!pos] || src.[!pos] = '.' || src.[!pos] = 'e'
             || src.[!pos] = 'E'
             || ((src.[!pos] = '+' || src.[!pos] = '-')
                && !pos > start
                && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
        do
          if src.[!pos] = '.' || src.[!pos] = 'e' || src.[!pos] = 'E' then
            is_float := true;
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        if !is_float then
          match float_of_string_opt s with
          | Some f -> emit (FLOAT f)
          | None -> raise (Lex_error ("bad float literal " ^ s, !line))
        else
          match int_of_string_opt s with
          | Some i -> emit (INT i)
          | None -> raise (Lex_error ("bad int literal " ^ s, !line))
      end
      else if is_name_start c then begin
        let start = !pos in
        while !pos < n && is_name_char src.[!pos] do
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        match s with
        | "def" -> emit DEF
        | "return" -> emit RETURN
        | "True" -> emit TRUE
        | "False" -> emit FALSE
        | _ -> emit (NAME s)
      end
      else
        raise
          (Lex_error (Printf.sprintf "unexpected character %c" c, !line))
    end
  done;
  end_line ();
  emit EOF;
  Array.of_list (List.rev !toks)
