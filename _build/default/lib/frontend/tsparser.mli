(** Recursive-descent parser for the TorchScript subset. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** @raise Parse_error on malformed input. *)
