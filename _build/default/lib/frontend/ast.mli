(** Abstract syntax of the TorchScript subset accepted by the C4CAM
    frontend.

    The subset covers the comparison-intensive kernels of the paper:
    tensor-typed parameters with explicit shapes (standing in for the
    shape information torch-mlir obtains from tracing), assignments,
    tuple-destructuring assignments ([values, indices = torch.topk(...)]),
    calls to [torch.*] functions, method calls, the binary operators
    [-] and [/] (sugar for [torch.sub] / [torch.div]), and [return]. *)

type expr =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Call of string * expr list * (string * expr) list
      (** [Call (path, args, kwargs)], path e.g. ["torch.matmul"] *)
  | Method of expr * string * expr list * (string * expr) list
      (** [x.transpose(-2, -1)] *)
  | Binop of binop * expr * expr

and binop = Bsub | Bdiv

type stmt =
  | Assign of string list * expr  (** one or more targets *)
  | Return of expr list

type func = {
  f_name : string;
  f_params : (string * int list) list;  (** name, tensor shape *)
  f_body : stmt list;
}

type program = func list

val expr_to_string : expr -> string
val stmt_to_string : stmt -> string
