exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { toks : Tslexer.token array; mutable cur : int }

let peek st = st.toks.(st.cur)
let peek2 st =
  if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1)
  else Tslexer.EOF

let advance st = st.cur <- st.cur + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    fail "expected %s, got %s"
      (Tslexer.token_to_string tok)
      (Tslexer.token_to_string t)

let expect_name st =
  match next st with
  | Tslexer.NAME s -> s
  | t -> fail "expected a name, got %s" (Tslexer.token_to_string t)

let skip_newlines st =
  while peek st = Tslexer.NEWLINE do
    advance st
  done

(* Dotted path after an initial name: name (DOT name)* *)
let parse_dotted st first =
  let rec go acc =
    match (peek st, peek2 st) with
    | Tslexer.DOT, Tslexer.NAME _ ->
        advance st;
        let part = expect_name st in
        go (part :: acc)
    | _ -> List.rev acc
  in
  String.concat "." (go [ first ])

let rec parse_expr st =
  let lhs = parse_primary st in
  parse_binop_rest st lhs

and parse_binop_rest st lhs =
  match peek st with
  | Tslexer.MINUS ->
      advance st;
      let rhs = parse_primary st in
      parse_binop_rest st (Ast.Binop (Ast.Bsub, lhs, rhs))
  | Tslexer.SLASH ->
      advance st;
      let rhs = parse_primary st in
      parse_binop_rest st (Ast.Binop (Ast.Bdiv, lhs, rhs))
  | _ -> lhs

and parse_primary st =
  match next st with
  | Tslexer.INT i -> parse_postfix st (Ast.Int_lit i)
  | Tslexer.FLOAT f -> parse_postfix st (Ast.Float_lit f)
  | Tslexer.TRUE -> Ast.Bool_lit true
  | Tslexer.FALSE -> Ast.Bool_lit false
  | Tslexer.MINUS -> (
      match next st with
      | Tslexer.INT i -> Ast.Int_lit (-i)
      | Tslexer.FLOAT f -> Ast.Float_lit (-.f)
      | t ->
          fail "unary minus only applies to literals, got %s"
            (Tslexer.token_to_string t))
  | Tslexer.LPAREN ->
      let e = parse_expr st in
      expect st Tslexer.RPAREN;
      parse_postfix st e
  | Tslexer.NAME first ->
      if first = "torch" then begin
        (* A torch function call, possibly via torch.ops.aten. *)
        let path = parse_dotted st first in
        match peek st with
        | Tslexer.LPAREN ->
            advance st;
            let args, kwargs = parse_args st in
            parse_postfix st (Ast.Call (path, args, kwargs))
        | t ->
            fail "expected a call after %s, got %s" path
              (Tslexer.token_to_string t)
      end
      else
        let base =
          (* 'self.weight' refers to a parameter named 'weight'. *)
          if first = "self" then begin
            match (peek st, peek2 st) with
            | Tslexer.DOT, Tslexer.NAME _ ->
                advance st;
                Ast.Var (expect_name st)
            | _ -> fail "'self' must be followed by an attribute"
          end
          else Ast.Var first
        in
        parse_postfix st base
  | t -> fail "unexpected token %s in expression" (Tslexer.token_to_string t)

(* Postfix method calls: expr.method(args)... *)
and parse_postfix st e =
  match (peek st, peek2 st) with
  | Tslexer.DOT, Tslexer.NAME _ -> (
      advance st;
      let m = expect_name st in
      match peek st with
      | Tslexer.LPAREN ->
          advance st;
          let args, kwargs = parse_args st in
          parse_postfix st (Ast.Method (e, m, args, kwargs))
      | t ->
          fail "expected a call after method .%s, got %s" m
            (Tslexer.token_to_string t))
  | _ -> e

and parse_args st =
  if peek st = Tslexer.RPAREN then (
    advance st;
    ([], []))
  else
    let args = ref [] and kwargs = ref [] in
    let rec go () =
      (match (peek st, peek2 st) with
      | Tslexer.NAME k, Tslexer.EQUAL ->
          advance st;
          advance st;
          let v = parse_expr st in
          kwargs := (k, v) :: !kwargs
      | _ ->
          let e = parse_expr st in
          if !kwargs <> [] then
            fail "positional argument after keyword argument";
          args := e :: !args);
      match next st with
      | Tslexer.COMMA -> go ()
      | Tslexer.RPAREN -> ()
      | t -> fail "expected , or ) in call, got %s" (Tslexer.token_to_string t)
    in
    go ();
    (List.rev !args, List.rev !kwargs)

let parse_shape st =
  expect st Tslexer.LBRACKET;
  let rec go acc =
    match next st with
    | Tslexer.INT i -> (
        match next st with
        | Tslexer.COMMA -> go (i :: acc)
        | Tslexer.RBRACKET -> List.rev (i :: acc)
        | t -> fail "bad shape list: %s" (Tslexer.token_to_string t))
    | t -> fail "expected a dimension, got %s" (Tslexer.token_to_string t)
  in
  go []

let parse_param st =
  let name = expect_name st in
  expect st Tslexer.COLON;
  let ty = expect_name st in
  if ty <> "Tensor" then
    fail "parameter %s: only Tensor parameters are supported, got %s" name
      ty;
  match peek st with
  | Tslexer.LBRACKET -> (name, parse_shape st)
  | _ ->
      fail
        "parameter %s: Tensor needs an explicit shape, e.g. \
         Tensor[10, 8192]"
        name

let parse_stmt st =
  match peek st with
  | Tslexer.RETURN ->
      advance st;
      let rec exprs acc =
        let e = parse_expr st in
        match peek st with
        | Tslexer.COMMA ->
            advance st;
            exprs (e :: acc)
        | _ -> List.rev (e :: acc)
      in
      Ast.Return (exprs [])
  | _ ->
      let rec targets acc =
        let t = expect_name st in
        match next st with
        | Tslexer.COMMA -> targets (t :: acc)
        | Tslexer.EQUAL -> List.rev (t :: acc)
        | tok ->
            fail "expected , or = after assignment target, got %s"
              (Tslexer.token_to_string tok)
      in
      let ts = targets [] in
      let e = parse_expr st in
      Ast.Assign (ts, e)

let parse_func st =
  expect st Tslexer.DEF;
  let name = expect_name st in
  expect st Tslexer.LPAREN;
  let params =
    if peek st = Tslexer.RPAREN then (
      advance st;
      [])
    else
      let rec go acc =
        match (peek st, peek2 st) with
        (* Ignore a bare 'self' parameter, as in the paper's listing. *)
        | Tslexer.NAME "self", Tslexer.COMMA ->
            advance st;
            advance st;
            go acc
        | Tslexer.NAME "self", Tslexer.RPAREN ->
            advance st;
            advance st;
            List.rev acc
        | _ -> (
            let p = parse_param st in
            match next st with
            | Tslexer.RPAREN -> List.rev (p :: acc)
            | Tslexer.COMMA -> go (p :: acc)
            | t -> fail "bad parameter list: %s" (Tslexer.token_to_string t))
      in
      go []
  in
  (* Optional return annotation: '-> Tensor' (shape optional, unused). *)
  (match peek st with
  | Tslexer.ARROW ->
      advance st;
      let _ = expect_name st in
      (match peek st with
      | Tslexer.LBRACKET -> ignore (parse_shape st)
      | _ -> ())
  | _ -> ());
  expect st Tslexer.COLON;
  expect st Tslexer.NEWLINE;
  let rec body acc =
    match peek st with
    | Tslexer.INDENT ->
        advance st;
        let s = parse_stmt st in
        (match peek st with
        | Tslexer.NEWLINE -> advance st
        | Tslexer.EOF -> ()
        | t -> fail "expected end of line, got %s" (Tslexer.token_to_string t));
        body (s :: acc)
    | _ -> List.rev acc
  in
  let stmts = body [] in
  if stmts = [] then fail "function %s has an empty body" name;
  { Ast.f_name = name; f_params = params; f_body = stmts }

let parse_program src =
  let toks =
    try Tslexer.tokenize src
    with Tslexer.Lex_error (msg, line) ->
      fail "lex error on line %d: %s" line msg
  in
  let st = { toks; cur = 0 } in
  skip_newlines st;
  let rec go acc =
    match peek st with
    | Tslexer.EOF -> List.rev acc
    | _ ->
        let f = parse_func st in
        skip_newlines st;
        go (f :: acc)
  in
  let prog = go [] in
  if prog = [] then fail "no functions found";
  prog
