(** Lexer for the TorchScript subset. Newlines are significant (they
    terminate statements); indentation is recognised but only "inside a
    def body or not" matters for the accepted subset. *)

type token =
  | DEF
  | RETURN
  | NAME of string  (** possibly dotted: [torch.matmul] *)
  | INT of int
  | FLOAT of float
  | TRUE
  | FALSE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUAL
  | MINUS
  | SLASH
  | ARROW
  | DOT
  | NEWLINE
  | INDENT  (** a line starting with whitespace *)
  | EOF

exception Lex_error of string * int  (** message, line number *)

val token_to_string : token -> string
val tokenize : string -> token array
(** [#] comments run to end of line; blank lines produce no tokens. *)
