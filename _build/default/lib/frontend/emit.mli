(** Lowering from the TorchScript AST to Torch-dialect IR, with shape
    inference. This is the C4CAM front end proper (Section III-C),
    including the [norm]/[topk] extension. *)

exception Emit_error of string

val program : Ast.program -> Ir.Func_ir.modul
(** @raise Emit_error on unsupported constructs, unknown variables, or
    shape mismatches. The emitted module verifies strictly against the
    registered torch dialect. *)

val compile_string : string -> Ir.Func_ir.modul
(** Parse and emit in one step (registers the dialects first).
    @raise Tsparser.Parse_error | Emit_error *)
