lib/interp/machine.mli: Camsim Ir Rtval Xbar
