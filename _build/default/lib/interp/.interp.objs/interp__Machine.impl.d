lib/interp/machine.ml: Array Camsim Dialects Float Hashtbl Ir List Printf Rtval String Xbar
