lib/interp/rtval.ml: Array Camsim Float List Printf String Xbar
