lib/interp/rtval.mli: Camsim Xbar
