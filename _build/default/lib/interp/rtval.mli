(** Runtime values of the IR interpreter.

    Tensors have value semantics (torch/cim levels); buffers are
    mutable, strided views over shared storage (memref level after
    bufferization). Index tensors are stored as floats and converted on
    read-out. *)

type tensor = { t_shape : int list; t_data : float array }

type buffer = {
  b_shape : int list;
  b_strides : int list;
  b_offset : int;
  b_data : float array;  (** shared with the views' parents *)
}

type t =
  | Tensor of tensor
  | Buffer of buffer
  | Index of int
  | Scalar of float
  | Boolean of bool
  | Handle of Camsim.Simulator.id
  | Xtile of Xbar.tile
  | Unit

exception Type_error of string

val tensor : int list -> float array -> t
(** @raise Type_error when sizes disagree. *)

val tensor_of_rows : float array array -> t
(** Rank-2 tensor from rows. *)

val zeros_tensor : int list -> t

val fresh_buffer : int list -> buffer
(** Contiguous zero buffer. *)

val buffer_of_rows : float array array -> buffer

val as_tensor : t -> tensor
val as_buffer : t -> buffer
val as_index : t -> int
val as_bool : t -> bool
val as_handle : t -> Camsim.Simulator.id
val as_xtile : t -> Xbar.tile

val row_major_strides : int list -> int list
val numel : int list -> int

val buffer_get : buffer -> int list -> float
val buffer_set : buffer -> int list -> float -> unit
val buffer_rows : buffer -> float array array
(** Materialise a rank-2 buffer as rows (copies). *)

val buffer_view : buffer -> offsets:int list -> sizes:int list -> buffer
(** Aliasing subview. @raise Type_error when out of bounds. *)

val tensor_get : tensor -> int list -> float
val tensor_rows : tensor -> float array array
(** Rank-2 tensor as rows (copies). *)

val to_rows : t -> float array array
(** Rank-2 tensor or buffer as rows. *)

val to_int_rows : t -> int array array
(** Same, rounding to integers (for index tensors). *)
