type tensor = { t_shape : int list; t_data : float array }

type buffer = {
  b_shape : int list;
  b_strides : int list;
  b_offset : int;
  b_data : float array;
}

type t =
  | Tensor of tensor
  | Buffer of buffer
  | Index of int
  | Scalar of float
  | Boolean of bool
  | Handle of Camsim.Simulator.id
  | Xtile of Xbar.tile
  | Unit

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let numel shape = List.fold_left ( * ) 1 shape

let tensor shape data =
  if numel shape <> Array.length data then
    fail "tensor: shape [%s] disagrees with %d elements"
      (String.concat ";" (List.map string_of_int shape))
      (Array.length data);
  Tensor { t_shape = shape; t_data = data }

let tensor_of_rows rows =
  let r = Array.length rows in
  let c = if r = 0 then 0 else Array.length rows.(0) in
  tensor [ r; c ] (Array.concat (Array.to_list rows))

let zeros_tensor shape = Tensor { t_shape = shape; t_data = Array.make (numel shape) 0. }

let row_major_strides shape =
  let rec go = function
    | [] -> []
    | [ _ ] -> [ 1 ]
    | _ :: rest ->
        let inner = go rest in
        (List.hd inner * List.hd rest) :: inner
  in
  go shape

let fresh_buffer shape =
  {
    b_shape = shape;
    b_strides = row_major_strides shape;
    b_offset = 0;
    b_data = Array.make (numel shape) 0.;
  }

let buffer_of_rows rows =
  let r = Array.length rows in
  let c = if r = 0 then 0 else Array.length rows.(0) in
  {
    b_shape = [ r; c ];
    b_strides = [ c; 1 ];
    b_offset = 0;
    b_data = Array.concat (Array.to_list rows);
  }

let as_tensor = function
  | Tensor t -> t
  | _ -> fail "expected a tensor"

let as_buffer = function
  | Buffer b -> b
  | _ -> fail "expected a buffer"

let as_index = function
  | Index i -> i
  | _ -> fail "expected an index"

let as_bool = function
  | Boolean b -> b
  | _ -> fail "expected a boolean"

let as_handle = function
  | Handle h -> h
  | _ -> fail "expected a device handle"

let as_xtile = function
  | Xtile t -> t
  | _ -> fail "expected a crossbar tile"

let linear_index strides offset idx =
  List.fold_left2 (fun acc s i -> acc + (s * i)) offset strides idx

let buffer_get b idx = b.b_data.(linear_index b.b_strides b.b_offset idx)

let buffer_set b idx v =
  b.b_data.(linear_index b.b_strides b.b_offset idx) <- v

let buffer_rows b =
  match (b.b_shape, b.b_strides) with
  | [ r; c ], [ s0; s1 ] ->
      Array.init r (fun i ->
          Array.init c (fun j -> b.b_data.(b.b_offset + (i * s0) + (j * s1))))
  | _ -> fail "buffer_rows: rank-2 buffer expected"

let buffer_view b ~offsets ~sizes =
  if
    List.length offsets <> List.length b.b_shape
    || List.length sizes <> List.length b.b_shape
  then fail "buffer_view: rank mismatch";
  List.iter2
    (fun (o, s) d ->
      if o < 0 || s < 0 || o + s > d then
        fail "buffer_view: window out of bounds")
    (List.combine offsets sizes)
    b.b_shape;
  {
    b_shape = sizes;
    b_strides = b.b_strides;
    b_offset = linear_index b.b_strides b.b_offset offsets;
    b_data = b.b_data;
  }

let tensor_get t idx =
  t.t_data.(linear_index (row_major_strides t.t_shape) 0 idx)

let tensor_rows t =
  match t.t_shape with
  | [ r; c ] ->
      Array.init r (fun i -> Array.sub t.t_data (i * c) c)
  | _ -> fail "tensor_rows: rank-2 tensor expected"

let to_rows = function
  | Tensor t -> tensor_rows t
  | Buffer b -> buffer_rows b
  | _ -> fail "expected a rank-2 tensor or buffer"

let to_int_rows v =
  Array.map
    (Array.map (fun f -> int_of_float (Float.round f)))
    (to_rows v)
