(** The IR interpreter.

    Executes modules at any abstraction level:
    - torch / cim ops run functionally on the host (zero latency) — the
      software reference path;
    - cam / scf / memref ops run against a {!Camsim.Simulator}, which
      accounts energy, while the interpreter composes latency
      structurally: statements in sequence and [scf.for] iterations add
      up, [scf.parallel] iterations combine by maximum. This is exactly
      how the architecture spec's access modes shape the performance of
      the generated code. *)

type outcome = { results : Rtval.t list; latency : float }

exception Runtime_error of string

val run :
  ?sim:Camsim.Simulator.t -> ?xsim:Xbar.t -> Ir.Func_ir.modul -> string ->
  Rtval.t list -> outcome
(** [run m fn args] executes function [fn] of module [m]. A CAM
    simulator is required iff the function contains [cam] ops; a
    crossbar iff it contains [crossbar] ops.
    @raise Runtime_error on missing functions, arity mismatches, or
    unsupported ops. *)
