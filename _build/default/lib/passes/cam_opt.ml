(* A loop is "the subarray loop" when a cam.alloc_subarray appears below
   it without crossing another loop. *)
let rec contains_alloc_sub_direct (op : Ir.Op.t) =
  List.exists
    (fun (r : Ir.Op.region) ->
      List.exists
        (fun (blk : Ir.Op.block) ->
          List.exists
            (fun (o : Ir.Op.t) ->
              String.equal o.op_name Dialects.Cam.alloc_subarray_name
              || ((not
                     (String.equal o.op_name Dialects.Scf.for_name
                     || String.equal o.op_name Dialects.Scf.parallel_name))
                 && contains_alloc_sub_direct o))
            blk.body)
        r.blocks)
    op.regions

let is_subarray_parallel (op : Ir.Op.t) =
  String.equal op.op_name Dialects.Scf.parallel_name
  && contains_alloc_sub_direct op

let subarray_loops m =
  Ir.Walk.collect_module
    (fun op ->
      (String.equal op.Ir.Op.op_name Dialects.Scf.parallel_name
      || String.equal op.Ir.Op.op_name Dialects.Scf.for_name)
      && contains_alloc_sub_direct op)
    m

(* Op names are immutable; rebuild the op in place by replacing it in
   its parent block. We do this with a top-down rewrite. *)
let rec rewrite_block (blk : Ir.Op.block) =
  blk.body <-
    List.map
      (fun (op : Ir.Op.t) ->
        let op =
          if is_subarray_parallel op then
            Ir.Op.create ~operands:op.operands ~results:op.results
              ~attrs:op.attrs ~regions:op.regions Dialects.Scf.for_name
          else op
        in
        List.iter
          (fun (r : Ir.Op.region) -> List.iter rewrite_block r.blocks)
          op.regions;
        op)
      blk.body

let power =
  Ir.Pass.make "cam-power" (fun m ->
      List.iter
        (fun (fn : Ir.Func_ir.func) -> rewrite_block fn.fn_body)
        m.funcs;
      m)
