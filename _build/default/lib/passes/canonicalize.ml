let pure_prefixes = [ "torch."; "arith." ]

let pure_ops =
  [
    Dialects.Cim.similarity_name;
    Dialects.Cim.similarity_partial_name;
    Dialects.Cim.similarity_scores_name;
    Dialects.Cim.slice_name;
    Dialects.Cim.merge_partial_name;
    Dialects.Cim.select_best_name;
    Dialects.Cim.zeros_name;
    "cim.reshape";
    "cim.transpose";
    "cim.matmul";
    "cim.mm";
    "cim.sub";
    "cim.div";
    "cim.norm";
    "cim.topk";
    Dialects.Memref.subview_name;
  ]

let is_pure name =
  List.exists (fun p -> String.length name >= String.length p
                        && String.sub name 0 (String.length p) = p)
    pure_prefixes
  || List.mem name pure_ops

(* ---- DCE -------------------------------------------------------------- *)

(* Iterate to a fixpoint within each block: removing one dead op can make
   its producers dead too. Uses are counted across nested regions. *)
let dce_func (fn : Ir.Func_ir.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
    Ir.Walk.iter_ops
      (fun op ->
        List.iter
          (fun (v : Ir.Value.t) ->
            Hashtbl.replace uses v.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt uses v.id)))
          op.operands)
      fn;
    let dead (op : Ir.Op.t) =
      is_pure op.op_name
      && op.regions = []
      && List.for_all
           (fun (v : Ir.Value.t) -> not (Hashtbl.mem uses v.id))
           op.results
    in
    let rec clean_block (blk : Ir.Op.block) =
      let before = List.length blk.body in
      blk.body <- List.filter (fun op -> not (dead op)) blk.body;
      if List.length blk.body <> before then changed := true;
      List.iter
        (fun (op : Ir.Op.t) ->
          List.iter
            (fun (r : Ir.Op.region) -> List.iter clean_block r.blocks)
            op.regions)
        blk.body
    in
    clean_block fn.fn_body
  done;
  fn

let dce = Ir.Pass.make "dce" (Ir.Func_ir.map_funcs dce_func)

(* ---- Constant folding -------------------------------------------------- *)

let fold_func (fn : Ir.Func_ir.func) =
  (* Map from value id to known constant index value. *)
  let known : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let const_of (v : Ir.Value.t) = Hashtbl.find_opt known v.id in
  let rec fold_block (blk : Ir.Op.block) =
    blk.body <-
      List.map
        (fun (op : Ir.Op.t) ->
          List.iter
            (fun (r : Ir.Op.region) -> List.iter fold_block r.blocks)
            op.regions;
          match op.op_name with
          | "arith.constant" ->
              (match (Ir.Op.attr op "value", op.results) with
              | Some (Ir.Attr.Int i), [ r ] when r.ty = Ir.Types.Index ->
                  Hashtbl.replace known r.id i
              | _ -> ());
              op
          | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi"
          | "arith.remi" -> (
              match
                (const_of (Ir.Op.operand op 0), const_of (Ir.Op.operand op 1))
              with
              | Some a, Some b ->
                  let f =
                    match op.op_name with
                    | "arith.addi" -> ( + )
                    | "arith.subi" -> ( - )
                    | "arith.muli" -> ( * )
                    | "arith.divi" -> ( / )
                    | _ -> fun a b -> a mod b
                  in
                  if
                    (op.op_name = "arith.divi" || op.op_name = "arith.remi")
                    && b = 0
                  then op
                  else begin
                    let v = f a b in
                    Hashtbl.replace known (Ir.Op.result op).id v;
                    Ir.Op.create ~results:op.results
                      ~attrs:[ ("value", Ir.Attr.Int v) ]
                      "arith.constant"
                  end
              | _ -> op)
          | _ -> op)
        blk.body
  in
  fold_block fn.fn_body;
  fn

let fold_constants =
  Ir.Pass.make "fold-constants" (Ir.Func_ir.map_funcs fold_func)

(* ---- Common-subexpression elimination ---------------------------------- *)

let cse_key (op : Ir.Op.t) =
  ( op.op_name,
    List.map (fun (v : Ir.Value.t) -> v.id) op.operands,
    List.sort compare op.attrs )

let cse_func (fn : Ir.Func_ir.func) =
  (* Global value substitution accumulated over all removed ops. *)
  let subst : (int, Ir.Value.t) Hashtbl.t = Hashtbl.create 32 in
  let resolve (v : Ir.Value.t) =
    match Hashtbl.find_opt subst v.id with Some v' -> v' | None -> v
  in
  let rec clean_block (blk : Ir.Op.block) =
    (* Available expressions are tracked per block: using a value from a
       sibling region would break dominance. *)
    let seen = Hashtbl.create 32 in
    blk.body <-
      List.filter
        (fun (op : Ir.Op.t) ->
          op.operands <- List.map resolve op.operands;
          List.iter
            (fun (r : Ir.Op.region) -> List.iter clean_block r.blocks)
            op.regions;
          if is_pure op.op_name && op.regions = [] then begin
            let key = cse_key op in
            match Hashtbl.find_opt seen key with
            | Some (earlier : Ir.Op.t) ->
                List.iter2
                  (fun (dead : Ir.Value.t) live ->
                    Hashtbl.replace subst dead.id live)
                  op.results earlier.results;
                false
            | None ->
                Hashtbl.replace seen key op;
                true
          end
          else true)
        blk.body
  in
  clean_block fn.fn_body;
  fn

let cse = Ir.Pass.make "cse" (Ir.Func_ir.map_funcs cse_func)

let pass =
  Ir.Pass.make "canonicalize" (fun m ->
      Ir.Pass.run ~verify:false dce
        (Ir.Pass.run ~verify:false cse
           (Ir.Pass.run ~verify:false fold_constants m)))
