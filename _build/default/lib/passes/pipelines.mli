(** Standard pass pipelines of the C4CAM flow (Figure 3). *)

val cim_pipeline : Ir.Pass.t list
(** torch-to-cim, fusion, canonicalize — the target-agnostic half. *)

val cam_pipeline : Archspec.Spec.t -> Ir.Pass.t list
(** Partitioning, cam mapping, and the spec-selected optimizations
    ([cam-power] is appended under [Power] / [Power_density]). *)

val full : Archspec.Spec.t -> Ir.Pass.t list

val by_name : Archspec.Spec.t -> string -> Ir.Pass.t option
(** Look up a single pass by its name (CLI [--passes] support). *)

val names : string list
