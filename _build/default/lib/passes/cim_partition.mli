(** Compulsory partitioning (Section III-D1, Figure 5d): tile fused
    [cim.similarity] / [cim.similarity_scores] ops into subarray-sized
    pieces with [cim.merge_partial] accumulation.

    The result is a [cim.partitioned_similarity] wrapper whose region
    holds the fully-expanded tile program (slices, partial similarities
    and merges) — executable at the cim level as a software reference —
    and whose attributes carry the tiling parameters consumed by the
    cam-map pass.

    Tiling is hierarchy-oblivious by design (the paper keeps hardware
    mapping out of the cim dialect); only the subarray geometry and, for
    the density optimization, the number of batches packed per subarray
    are used. Requires the data dimension to divide evenly by the
    subarray columns, and the stored rows by the subarray rows when they
    exceed them. *)

val batches_for : Archspec.Spec.t -> stored_rows:int -> int
(** Tiles sharing one subarray: [floor(rows/n)] under [Density] /
    [Power_density] when [n < rows], otherwise 1. *)

val pass : ?expand_limit:int -> Archspec.Spec.t -> Ir.Pass.t
(** [expand_limit] (default 4096 tiles) bounds the size of the expanded
    region; larger tilings get a compact single-op region (still
    executable in software — the wrapper attributes alone drive
    cam-map). *)
