(** Canonicalization: dead-code elimination of pure ops and constant
    folding of index arithmetic. *)

val is_pure : string -> bool
(** Ops safe to remove when their results are unused. *)

val dce : Ir.Pass.t
val fold_constants : Ir.Pass.t

val cse : Ir.Pass.t
(** Common-subexpression elimination: within each block, a pure,
    region-free op whose name, operands and attributes equal an earlier
    op's is removed and its results replaced by the earlier op's. *)

val pass : Ir.Pass.t
(** Folding, CSE, then DCE. *)
