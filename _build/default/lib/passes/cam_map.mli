(** cim-to-cam conversion plus the cam-map pass (Section III-D2).

    Consumes functions of the shape produced by the cim pipeline
    ([cim.acquire]; [cim.execute] holding a
    [cim.partitioned_similarity]; [cim.release]; [func.return]) and
    produces the bufferized cam-level function of Figure 6: a loop nest
    over banks / mats / arrays / subarrays (loop kinds chosen from the
    architecture spec's access modes) with [cam] device calls at each
    level, guards pruning unused hierarchy units, and a final
    [cam.select_best].

    The paper's metric mapping is applied here: [dot] and [cosine]
    similarities lower to Hamming search (with the selection direction
    flipped for [dot]/[cosine], since larger similarity means smaller
    distance); [euclidean] lowers to Euclidean search, which requires an
    MCAM or ACAM device.

    Exactness of the dot-to-Hamming mapping: on bipolar vectors
    ([-1/+1], the HDC convention) [dot = dims - 2*hamming], so the CAM
    ranking equals the software ranking at every position. On 0/1
    vectors [hamming = |q| + |s| - 2*dot] additionally depends on the
    stored rows' weights, so rankings agree only where similarity
    margins exceed the weight spread — which holds for the top match of
    noisy-prototype workloads, and is what the e2e tests rely on for
    binary data. *)

type mapping = {
  tiles : int;  (** row_chunks x col_chunks *)
  slots : int;  (** subarrays actually holding data *)
  banks : int;
  batches : int;  (** tiles sharing one subarray (density) *)
}

val mapping_of :
  Archspec.Spec.t -> row_chunks:int -> col_chunks:int -> batches:int ->
  mapping
(** The allocation arithmetic behind Table I. *)

val pass : Archspec.Spec.t -> Ir.Pass.t
