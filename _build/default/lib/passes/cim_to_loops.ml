let pass_name = "cim-to-loops"

let fail fmt = Printf.ksprintf (fun s -> Ir.Pass.fail ~pass:pass_name s) fmt

let find_similarity (fn : Ir.Func_ir.func) =
  let sims =
    List.concat_map
      (fun (op : Ir.Op.t) ->
        if String.equal op.op_name Dialects.Cim.execute_name then
          List.filter
            (fun (o : Ir.Op.t) ->
              String.equal o.op_name Dialects.Cim.similarity_name
              || String.equal o.op_name Dialects.Cim.similarity_scores_name)
            (Ir.Op.body_ops op)
        else [])
      fn.fn_body.body
  in
  match sims with [ s ] -> Some s | _ -> None

(* acc += contribution(a, b) for one dimension, per metric *)
let emit_contribution b metric ~a ~bv ~acc_cell ~zero_idx =
  let acc =
    Dialects.Memref.load b acc_cell ~indices:[ zero_idx; zero_idx ]
  in
  let contribution =
    match (metric : Dialects.Cim.metric) with
    | Dot | Cosine -> Dialects.Arith.mulf b a bv
    | Euclidean ->
        let diff = Dialects.Arith.subf b a bv in
        Dialects.Arith.mulf b diff diff
    | Hamming ->
        let ne = Dialects.Arith.cmpf b Dialects.Arith.Ne a bv in
        let one = Dialects.Arith.const_f32 b 1. in
        let zero = Dialects.Arith.const_f32 b 0. in
        Dialects.Arith.select b ne one zero
  in
  let acc' = Dialects.Arith.addf b acc contribution in
  Dialects.Memref.store b acc' acc_cell ~indices:[ zero_idx; zero_idx ]

let rewrite_func (fn : Ir.Func_ir.func) =
  match find_similarity fn with
  | None -> fn
  | Some sim ->
      let rec underlying (v : Ir.Value.t) =
        match Ir.Walk.find_def fn v with
        | Some def
          when String.equal def.op_name Dialects.Cim.reshape_name ->
            underlying (Ir.Op.operand def 0)
        | _ -> v
      in
      let old_query = underlying (Ir.Op.operand sim 0) in
      let old_stored = underlying (Ir.Op.operand sim 1) in
      let n, d =
        match Ir.Types.shape (Ir.Op.operand sim 1).Ir.Value.ty with
        | [ n; d ] -> (n, d)
        | _ -> fail "stored must be rank-2"
      in
      let q = List.hd (Ir.Types.shape (Ir.Op.operand sim 0).Ir.Value.ty) in
      let metric = Dialects.Cim.metric_of_attr (Ir.Op.attr_exn sim "metric") in
      let topk =
        if String.equal sim.op_name Dialects.Cim.similarity_name then
          Some
            ( Ir.Attr.as_int (Ir.Op.attr_exn sim "k"),
              Ir.Attr.as_bool (Ir.Op.attr_exn sim "largest") )
        else None
      in
      let query = Ir.Value.fresh (Ir.Types.memref [ q; d ] Ir.Types.F32) in
      let stored = Ir.Value.fresh (Ir.Types.memref [ n; d ] Ir.Types.F32) in
      let args =
        List.map
          (fun (arg : Ir.Value.t) ->
            if Ir.Value.equal arg old_query then query
            else if Ir.Value.equal arg old_stored then stored
            else arg)
          fn.fn_args
      in
      let b = Ir.Builder.create () in
      let dist = Dialects.Memref.alloc b [ q; n ] Ir.Types.F32 in
      let c0 = Dialects.Arith.const_index b 0 in
      let c1 = Dialects.Arith.const_index b 1 in
      let cq = Dialects.Arith.const_index b q in
      let cn = Dialects.Arith.const_index b n in
      let cd = Dialects.Arith.const_index b d in
      Dialects.Scf.for_ b ~lb:c0 ~ub:cq ~step:c1 (fun b qi ->
          Dialects.Scf.for_ b ~lb:c0 ~ub:cn ~step:c1 (fun b ni ->
              let acc_cell = Dialects.Memref.alloc b [ 1; 1 ] Ir.Types.F32 in
              Dialects.Scf.for_ b ~lb:c0 ~ub:cd ~step:c1 (fun b di ->
                  let a = Dialects.Memref.load b query ~indices:[ qi; di ] in
                  let bv =
                    Dialects.Memref.load b stored ~indices:[ ni; di ]
                  in
                  emit_contribution b metric ~a ~bv ~acc_cell ~zero_idx:c0);
              let total =
                Dialects.Memref.load b acc_cell ~indices:[ c0; c0 ]
              in
              Dialects.Memref.store b total dist ~indices:[ qi; ni ]));
      let results =
        match topk with
        | Some (k, largest) ->
            (* host top-k selection over the computed scores *)
            let values = Ir.Value.fresh (Ir.Types.tensor [ q; k ] Ir.Types.F32) in
            let indices = Ir.Value.fresh (Ir.Types.tensor [ q; k ] Ir.Types.I32) in
            Ir.Builder.add b
              (Ir.Op.create ~operands:[ dist ]
                 ~results:[ values; indices ]
                 ~attrs:
                   [ ("k", Ir.Attr.Int k); ("largest", Ir.Attr.Bool largest) ]
                 Dialects.Cim.select_best_name);
            [ values; indices ]
        | None -> [ dist ]
      in
      Ir.Builder.op0 b ~operands:results Dialects.Torch.return_name;
      Ir.Func_ir.func fn.fn_name ~args
        ~ret:(List.map (fun (v : Ir.Value.t) -> v.ty) results)
        (Ir.Builder.finish b)

let pass =
  Ir.Pass.make pass_name (fun m -> Ir.Func_ir.map_funcs rewrite_func m)
