let offloadable_names =
  [
    Dialects.Cim.similarity_name;
    Dialects.Cim.similarity_scores_name;
    Dialects.Cim.partitioned_similarity_name;
  ]

let has_offloadable (exec : Ir.Op.t) =
  List.exists
    (fun (o : Ir.Op.t) -> List.mem o.op_name offloadable_names)
    (Ir.Op.body_ops exec)

(* Raise a cim compute twin back to its torch form; other ops keep their
   names (slices, reshapes and merges are host-executable as they are). *)
let raise_name name =
  match String.index_opt name '.' with
  | Some i when String.sub name 0 i = "cim" ->
      let m = String.sub name (i + 1) (String.length name - i - 1) in
      if List.mem ("cim." ^ m) Dialects.Cim.compute_op_names then
        "torch." ^ m
      else name
  | _ -> name

let fallback_func (fn : Ir.Func_ir.func) =
  let subst : (int, Ir.Value.t) Hashtbl.t = Hashtbl.create 16 in
  let resolve (v : Ir.Value.t) =
    match Hashtbl.find_opt subst v.id with Some v' -> v' | None -> v
  in
  let rec rewrite (ops : Ir.Op.t list) =
    match ops with
    | acquire :: exec :: release :: rest
      when String.equal acquire.Ir.Op.op_name Dialects.Cim.acquire_name
           && String.equal exec.Ir.Op.op_name Dialects.Cim.execute_name
           && String.equal release.Ir.Op.op_name Dialects.Cim.release_name
           && Ir.Value.equal (Ir.Op.result acquire) (Ir.Op.operand exec 0)
           && Ir.Value.equal (Ir.Op.result acquire) (Ir.Op.operand release 0)
           && not (has_offloadable exec) ->
        let body, yield_op =
          match List.rev (Ir.Op.body_ops exec) with
          | last :: rev when String.equal last.Ir.Op.op_name Dialects.Cim.yield_name
            ->
              (List.rev rev, last)
          | _ -> Ir.Pass.fail ~pass:"cim-host-fallback" "execute without yield"
        in
        let inlined =
          List.map
            (fun (op : Ir.Op.t) ->
              Ir.Op.create
                ~operands:(List.map resolve op.operands)
                ~results:op.results ~attrs:op.attrs ~regions:op.regions
                (raise_name op.op_name))
            body
        in
        List.iter2
          (fun (outer : Ir.Value.t) inner ->
            Hashtbl.replace subst outer.id (resolve inner))
          exec.results yield_op.operands;
        inlined @ rewrite rest
    | op :: rest ->
        op.operands <- List.map resolve op.operands;
        op :: rewrite rest
    | [] -> []
  in
  fn.fn_body.body <- rewrite fn.fn_body.body;
  fn

let pass =
  Ir.Pass.make "cim-host-fallback" (Ir.Func_ir.map_funcs fallback_func)
