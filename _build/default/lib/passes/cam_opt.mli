(** Built-in cam-level optimizations (Section III-D2).

    [power] is the cam-power transformation applied to already-mapped
    IR: the subarray-level [scf.parallel] loop (the one whose body
    allocates subarrays) is rewritten into a sequential [scf.for], so at
    most one subarray per array is active at a time. Energy is
    unchanged; latency grows; average power drops.

    The density optimization is applied earlier (it changes data
    placement, not loop structure): see {!Cim_partition.batches_for}. *)

val power : Ir.Pass.t

val subarray_loops : Ir.Func_ir.modul -> Ir.Op.t list
(** The loops [power] would rewrite (exposed for tests/ablation). *)
