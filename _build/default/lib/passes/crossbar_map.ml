let pass_name = "crossbar-map"

let fail fmt = Printf.ksprintf (fun s -> Ir.Pass.fail ~pass:pass_name s) fmt

(* Match a function whose only compute is a single cim.matmul inside the
   acquire/execute/release pattern; return the matmul op. *)
let find_matmul (fn : Ir.Func_ir.func) =
  let matmuls =
    List.concat_map
      (fun (op : Ir.Op.t) ->
        if String.equal op.op_name Dialects.Cim.execute_name then
          List.filter
            (fun (o : Ir.Op.t) ->
              String.equal o.op_name "cim.matmul"
              || String.equal o.op_name "cim.mm")
            (Ir.Op.body_ops op)
        else [])
      fn.fn_body.body
  in
  match matmuls with [ m ] -> Some m | _ -> None

let rewrite_func (xspec : Xbar.spec) (fn : Ir.Func_ir.func) =
  match find_matmul fn with
  | None -> fn
  | Some matmul ->
      let a = Ir.Op.operand matmul 0 and bmat = Ir.Op.operand matmul 1 in
      let m, k =
        match Ir.Types.shape a.Ir.Value.ty with
        | [ m; k ] -> (m, k)
        | _ -> fail "matmul input must be rank-2"
      in
      let n =
        match Ir.Types.shape bmat.Ir.Value.ty with
        | [ k'; n ] when k' = k -> n
        | _ -> fail "matmul weight shape disagrees"
      in
      if k mod xspec.tile_rows <> 0 then
        fail "K=%d does not divide by the %d tile rows" k xspec.tile_rows;
      if n mod xspec.tile_cols <> 0 then
        fail "N=%d does not divide by the %d tile cols" n xspec.tile_cols;
      let k_chunks = k / xspec.tile_rows in
      let n_chunks = n / xspec.tile_cols in
      let inputs = Ir.Value.fresh (Ir.Types.memref [ m; k ] Ir.Types.F32) in
      let weights = Ir.Value.fresh (Ir.Types.memref [ k; n ] Ir.Types.F32) in
      let args =
        List.map
          (fun (arg : Ir.Value.t) ->
            if Ir.Value.equal arg a then inputs
            else if Ir.Value.equal arg bmat then weights
            else arg)
          fn.fn_args
      in
      let b = Ir.Builder.create () in
      let out = Dialects.Memref.alloc b [ m; n ] Ir.Types.F32 in
      let c0 = Dialects.Arith.const_index b 0 in
      let c1 = Dialects.Arith.const_index b 1 in
      let c_kc = Dialects.Arith.const_index b k_chunks in
      let c_nc = Dialects.Arith.const_index b n_chunks in
      let c_kt = Dialects.Arith.const_index b xspec.tile_rows in
      let c_nt = Dialects.Arith.const_index b xspec.tile_cols in
      Dialects.Scf.parallel b ~lb:c0 ~ub:c_kc ~step:c1 (fun b kt ->
          let k_off = Dialects.Arith.muli b kt c_kt in
          Dialects.Scf.parallel b ~lb:c0 ~ub:c_nc ~step:c1 (fun b nt ->
              let n_off = Dialects.Arith.muli b nt c_nt in
              let tile = Dialects.Crossbar.alloc_tile b in
              let block =
                Dialects.Memref.subview b weights ~offsets:[ k_off; n_off ]
                  ~sizes:[ xspec.tile_rows; xspec.tile_cols ]
              in
              Dialects.Crossbar.write b tile block;
              let x =
                Dialects.Memref.subview b inputs ~offsets:[ c0; k_off ]
                  ~sizes:[ m; xspec.tile_rows ]
              in
              let y = Dialects.Crossbar.gemv b tile x ~rows:xspec.tile_cols in
              let dst =
                Dialects.Memref.subview b out ~offsets:[ c0; n_off ]
                  ~sizes:[ m; xspec.tile_cols ]
              in
              Dialects.Crossbar.accumulate b ~dst ~part:y));
      Ir.Builder.op0 b ~operands:[ out ] Dialects.Torch.return_name;
      Ir.Func_ir.func fn.fn_name ~args
        ~ret:[ out.Ir.Value.ty ]
        (Ir.Builder.finish b)

let pass xspec =
  Ir.Pass.make pass_name (fun m ->
      Ir.Func_ir.map_funcs (rewrite_func xspec) m)
