let pass_name = "cam-map"

let fail fmt = Printf.ksprintf (fun s -> Ir.Pass.fail ~pass:pass_name s) fmt

type mapping = { tiles : int; slots : int; banks : int; batches : int }

let ceil_div a b = (a + b - 1) / b

let mapping_of (spec : Archspec.Spec.t) ~row_chunks ~col_chunks ~batches =
  let tiles = row_chunks * col_chunks in
  let slots = ceil_div tiles batches in
  let banks = ceil_div slots (Archspec.Spec.subarrays_per_bank spec) in
  (match spec.max_banks with
  | Some b when banks > b ->
      fail "mapping needs %d banks but the spec allows only %d" banks b
  | _ -> ());
  { tiles; slots; banks; batches }

type info = {
  q : int;
  n : int;
  d : int;
  tile_rows : int;
  col_chunks : int;
  metric : Dialects.Cam.search_metric;
  select : [ `Topk of int * bool | `Scores ];
  map : mapping;
}

let metric_of_cim (spec : Archspec.Spec.t) = function
  | Dialects.Cim.Dot | Dialects.Cim.Cosine | Dialects.Cim.Hamming ->
      Dialects.Cam.Hamming
  | Dialects.Cim.Euclidean -> (
      match spec.cam_kind with
      | Mcam | Acam -> Dialects.Cam.Euclidean
      | Tcam | Bcam ->
          fail
            "euclidean similarity requires an MCAM or ACAM device; the \
             spec selects a %s"
            (Archspec.Spec.cam_kind_to_string spec.cam_kind))

(* Larger dot/cosine similarity corresponds to a smaller CAM distance,
   so the selection direction flips for those metrics. *)
let select_largest cim_metric ~largest =
  match cim_metric with
  | Dialects.Cim.Dot | Dialects.Cim.Cosine -> not largest
  | Dialects.Cim.Euclidean | Dialects.Cim.Hamming -> largest

let mode (m : Archspec.Spec.access_mode) =
  match m with Sequential -> `Sequential | Parallel -> `Parallel

(* Emit the loop nest of Figure 6. *)
let emit_body (spec : Archspec.Spec.t) info b ~query ~stored =
  let s_per_a = spec.subarrays_per_array in
  let a_per_m = spec.arrays_per_mat in
  let m_per_b = spec.mats_per_bank in
  let dist =
    Dialects.Memref.alloc b [ info.q; info.n ] Ir.Types.F32
  in
  let c0 = Dialects.Arith.const_index b 0 in
  let c1 = Dialects.Arith.const_index b 1 in
  let c_banks = Dialects.Arith.const_index b info.map.banks in
  let c_mats = Dialects.Arith.const_index b m_per_b in
  let c_arrays = Dialects.Arith.const_index b a_per_m in
  let c_subs = Dialects.Arith.const_index b s_per_a in
  let c_batches = Dialects.Arith.const_index b info.map.batches in
  let c_slots = Dialects.Arith.const_index b info.map.slots in
  let c_tiles = Dialects.Arith.const_index b info.map.tiles in
  let c_col_chunks = Dialects.Arith.const_index b info.col_chunks in
  let c_tile_rows = Dialects.Arith.const_index b info.tile_rows in
  let c_cols = Dialects.Arith.const_index b spec.cols in
  let batch_extra = info.map.batches > 1 in
  Dialects.Scf.loop_of_mode (mode spec.bank_mode) b ~lb:c0 ~ub:c_banks
    ~step:c1 (fun b bank_iv ->
      let bank = Dialects.Cam.alloc_bank b ~rows:spec.rows ~cols:spec.cols in
      Dialects.Scf.loop_of_mode (mode spec.mat_mode) b ~lb:c0 ~ub:c_mats
        ~step:c1 (fun b mat_iv ->
          (* slot id of the first subarray under this mat *)
          let mat_lin =
            Dialects.Arith.addi b
              (Dialects.Arith.muli b bank_iv c_mats)
              mat_iv
          in
          let mat_base =
            Dialects.Arith.muli b
              (Dialects.Arith.muli b mat_lin c_arrays)
              c_subs
          in
          let mat_used = Dialects.Arith.cmpi b Dialects.Arith.Lt mat_base c_slots in
          Dialects.Scf.if_ b mat_used (fun b ->
              let mat = Dialects.Cam.alloc_mat b bank in
              Dialects.Scf.loop_of_mode (mode spec.array_mode) b ~lb:c0
                ~ub:c_arrays ~step:c1 (fun b arr_iv ->
                  let arr_lin =
                    Dialects.Arith.addi b
                      (Dialects.Arith.muli b mat_lin c_arrays)
                      arr_iv
                  in
                  let arr_base = Dialects.Arith.muli b arr_lin c_subs in
                  let arr_used =
                    Dialects.Arith.cmpi b Dialects.Arith.Lt arr_base c_slots
                  in
                  Dialects.Scf.if_ b arr_used (fun b ->
                      let arr = Dialects.Cam.alloc_array b mat in
                      Dialects.Scf.loop_of_mode (mode spec.subarray_mode) b
                        ~lb:c0 ~ub:c_subs ~step:c1 (fun b sub_iv ->
                          let slot =
                            Dialects.Arith.addi b arr_base sub_iv
                          in
                          let sub_used =
                            Dialects.Arith.cmpi b Dialects.Arith.Lt slot
                              c_slots
                          in
                          Dialects.Scf.if_ b sub_used (fun b ->
                              let sub = Dialects.Cam.alloc_subarray b arr in
                              Dialects.Scf.for_ b ~lb:c0 ~ub:c_batches
                                ~step:c1 (fun b bt_iv ->
                                  let tile =
                                    Dialects.Arith.addi b
                                      (Dialects.Arith.muli b slot c_batches)
                                      bt_iv
                                  in
                                  let tile_ok =
                                    Dialects.Arith.cmpi b Dialects.Arith.Lt
                                      tile c_tiles
                                  in
                                  Dialects.Scf.if_ b tile_ok (fun b ->
                                      let rc =
                                        Dialects.Arith.divi b tile
                                          c_col_chunks
                                      in
                                      let cc =
                                        Dialects.Arith.remi b tile
                                          c_col_chunks
                                      in
                                      let row_off =
                                        Dialects.Arith.muli b rc c_tile_rows
                                      in
                                      let col_off =
                                        Dialects.Arith.muli b cc c_cols
                                      in
                                      let s_sl =
                                        Dialects.Memref.subview b stored
                                          ~offsets:[ row_off; col_off ]
                                          ~sizes:[ info.tile_rows; spec.cols ]
                                      in
                                      let q_sl =
                                        Dialects.Memref.subview b query
                                          ~offsets:[ c0; col_off ]
                                          ~sizes:[ info.q; spec.cols ]
                                      in
                                      let bt_row =
                                        Dialects.Arith.muli b bt_iv
                                          c_tile_rows
                                      in
                                      Dialects.Cam.write_value b sub s_sl
                                        ~row_offset:bt_row;
                                      Dialects.Cam.search b sub q_sl
                                        ~kind:Dialects.Cam.Best
                                        ~metric:info.metric
                                        ~row_offset:bt_row
                                        ~rows:info.tile_rows ~batch_extra
                                        ();
                                      let part =
                                        Dialects.Cam.read b sub
                                          ~queries:info.q
                                          ~rows:info.tile_rows
                                      in
                                      let dst =
                                        Dialects.Memref.subview b dist
                                          ~offsets:[ c0; row_off ]
                                          ~sizes:[ info.q; info.tile_rows ]
                                      in
                                      Dialects.Cam.merge_partial b ~dst
                                        ~part)))))))));
  dist

let rewrite_func (spec : Archspec.Spec.t) (fn : Ir.Func_ir.func) :
    Ir.Func_ir.func =
  (* Find the partitioned similarity inside the acquire/execute/release
     pattern; functions without one are left untouched. *)
  let part =
    List.concat_map
      (fun (op : Ir.Op.t) ->
        if String.equal op.op_name Dialects.Cim.execute_name then
          List.filter
            (fun (o : Ir.Op.t) ->
              String.equal o.op_name
                Dialects.Cim.partitioned_similarity_name)
            (Ir.Op.body_ops op)
        else [])
      fn.fn_body.body
  in
  match part with
  | [] -> fn
  | _ :: _ :: _ -> fail "multiple partitioned similarities per function"
  | [ p ] ->
      let attr_i key = Ir.Attr.as_int (Ir.Op.attr_exn p key) in
      let cim_metric =
        Dialects.Cim.metric_of_attr (Ir.Op.attr_exn p "metric")
      in
      let select =
        match Ir.Attr.as_sym (Ir.Op.attr_exn p "output") with
        | "topk" ->
            `Topk
              ( attr_i "k",
                select_largest cim_metric
                  ~largest:(Ir.Attr.as_bool (Ir.Op.attr_exn p "largest")) )
        | _ -> `Scores
      in
      let map =
        mapping_of spec ~row_chunks:(attr_i "row_chunks")
          ~col_chunks:(attr_i "col_chunks") ~batches:(attr_i "batches")
      in
      if attr_i "rows" * map.batches > spec.rows then
        fail "tile rows times batches exceed the subarray rows";
      let info =
        {
          q = attr_i "q";
          n = attr_i "n";
          d = attr_i "d";
          tile_rows = attr_i "rows";
          col_chunks = attr_i "col_chunks";
          metric = metric_of_cim spec cim_metric;
          select;
          map;
        }
      in
      (* Bufferization: the query/stored tensor arguments become memref
         arguments of a fresh function. A batched-KNN query reaches the
         kernel through a cim.reshape squeeze — trace it back to the
         underlying argument; its buffer takes the squeezed [q,d] shape. *)
      let rec underlying (v : Ir.Value.t) =
        match Ir.Walk.find_def fn v with
        | Some def
          when String.equal def.op_name Dialects.Cim.reshape_name ->
            underlying (Ir.Op.operand def 0)
        | _ -> v
      in
      let old_query = underlying (Ir.Op.operand p 0) in
      let old_stored = underlying (Ir.Op.operand p 1) in
      let query =
        Ir.Value.fresh (Ir.Types.memref [ info.q; info.d ] Ir.Types.F32)
      in
      let stored =
        Ir.Value.fresh (Ir.Types.memref [ info.n; info.d ] Ir.Types.F32)
      in
      let args =
        List.map
          (fun (a : Ir.Value.t) ->
            if Ir.Value.equal a old_query then query
            else if Ir.Value.equal a old_stored then stored
            else a)
          fn.fn_args
      in
      let b = Ir.Builder.create () in
      let dist = emit_body spec info b ~query ~stored in
      let results =
        match info.select with
        | `Topk (k, largest) ->
            let values, indices = Dialects.Cam.select_best b dist ~k ~largest in
            [ values; indices ]
        | `Scores -> [ dist ]
      in
      Ir.Builder.op0 b ~operands:results Dialects.Torch.return_name;
      Ir.Func_ir.func fn.fn_name ~args
        ~ret:(List.map (fun (v : Ir.Value.t) -> v.ty) results)
        (Ir.Builder.finish b)

let pass spec =
  Ir.Pass.make pass_name (fun m ->
      Ir.Func_ir.map_funcs (rewrite_func spec) m)
