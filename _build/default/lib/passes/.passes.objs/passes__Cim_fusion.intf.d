lib/passes/cim_fusion.mli: Ir
