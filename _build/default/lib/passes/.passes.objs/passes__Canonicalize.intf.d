lib/passes/canonicalize.mli: Ir
