lib/passes/cam_map.mli: Archspec Ir
