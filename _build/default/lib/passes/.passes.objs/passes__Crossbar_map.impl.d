lib/passes/crossbar_map.ml: Dialects Ir List Printf String Xbar
