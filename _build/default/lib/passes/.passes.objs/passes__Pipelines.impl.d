lib/passes/pipelines.ml: Archspec Cam_map Cam_opt Canonicalize Cim_fusion Cim_partition Cim_to_loops Host_fallback Torch_to_cim
