lib/passes/cam_opt.ml: Dialects Ir List String
