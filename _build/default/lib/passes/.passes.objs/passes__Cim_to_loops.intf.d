lib/passes/cim_to_loops.mli: Ir
