lib/passes/pipelines.mli: Archspec Ir
