lib/passes/cim_partition.mli: Archspec Ir
