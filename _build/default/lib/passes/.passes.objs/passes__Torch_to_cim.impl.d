lib/passes/torch_to_cim.ml: Dialects Ir List
