lib/passes/cim_to_loops.ml: Dialects Ir List Printf String
