lib/passes/cim_fusion.ml: Array Dialects Hashtbl Ir List String
