lib/passes/host_fallback.mli: Ir
