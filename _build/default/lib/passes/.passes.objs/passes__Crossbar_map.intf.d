lib/passes/crossbar_map.mli: Ir Xbar
