lib/passes/canonicalize.ml: Dialects Hashtbl Ir List Option String
