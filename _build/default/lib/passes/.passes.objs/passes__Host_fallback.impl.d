lib/passes/host_fallback.ml: Dialects Hashtbl Ir List String
