lib/passes/cam_opt.mli: Ir
