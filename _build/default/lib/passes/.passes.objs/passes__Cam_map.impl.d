lib/passes/cam_map.ml: Archspec Dialects Ir List Printf String
