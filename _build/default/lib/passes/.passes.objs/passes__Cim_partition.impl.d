lib/passes/cim_partition.ml: Archspec Dialects Ir List Printf String
