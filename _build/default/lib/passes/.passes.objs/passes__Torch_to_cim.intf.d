lib/passes/torch_to_cim.mli: Ir
