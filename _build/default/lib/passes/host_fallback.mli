(** Host fallback (Section III-D1): execution blocks that did not match
    any CAM-amenable pattern after fusion "follow the standard MLIR
    pipeline to generate llvm code for execution on the host processor".

    This pass implements that routing decision: every
    [cim.acquire]/[cim.execute]/[cim.release] triple whose region holds
    no fused similarity op is unwrapped — its body is inlined at the top
    level with the cim compute twins raised back to their torch forms —
    so the host (the functional interpreter, in this reproduction) runs
    it directly. Triples holding a similarity stay untouched for the cam
    pipeline. *)

val pass : Ir.Pass.t
