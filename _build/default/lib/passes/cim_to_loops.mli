(** The "loop" lowering branch of Figure 3: execute the fused similarity
    on the HOST as explicit scf loops over scalar float arithmetic and
    memref loads/stores — the path taken when no accelerator is
    targeted.

    Consumes the fused form
    ([cim.acquire]; [cim.execute([cim.similarity(_scores); yield])];
    [cim.release]; [return]) and produces a bufferized function: a
    triple loop nest computing the [Q x N] score matrix cell by cell
    (metric-specific inner body) followed by a host top-k selection.
    Host ops carry no device cost — the interpreter reports zero latency
    for this path, which only provides functional execution. *)

val pass : Ir.Pass.t
