let pass_name = "cim-partition"

let batches_for (spec : Archspec.Spec.t) ~stored_rows =
  match spec.optimization with
  | Density | Power_density when stored_rows < spec.rows ->
      max 1 (spec.rows / stored_rows)
  | Density | Power_density | Base | Power -> 1

type params = {
  q : int;
  n : int;
  d : int;
  tile_rows : int;
  row_chunks : int;
  col_chunks : int;
  batches : int;
}

let plan (spec : Archspec.Spec.t) ~q ~n ~d =
  if d mod spec.cols <> 0 then
    Ir.Pass.fail ~pass:pass_name
      (Printf.sprintf
         "data dimension %d is not divisible by the subarray columns %d" d
         spec.cols);
  let tile_rows = min n spec.rows in
  if n > spec.rows && n mod spec.rows <> 0 then
    Ir.Pass.fail ~pass:pass_name
      (Printf.sprintf
         "stored rows %d are not divisible by the subarray rows %d" n
         spec.rows);
  {
    q;
    n;
    d;
    tile_rows;
    row_chunks = n / tile_rows;
    col_chunks = d / spec.cols;
    batches = batches_for spec ~stored_rows:n;
  }

(* Build the expanded tile program (the region of the wrapper op). *)
let expanded_region (spec : Archspec.Spec.t) p ~query ~stored ~metric
    ~select : Ir.Op.region * Ir.Value.t list =
  let b = Ir.Builder.create () in
  let global = ref (Dialects.Cim.zeros b [ p.q; p.n ]) in
  for rc = 0 to p.row_chunks - 1 do
    let acc = ref None in
    for cc = 0 to p.col_chunks - 1 do
      let q_sl =
        Dialects.Cim.slice b query
          ~offsets:[ 0; cc * spec.cols ]
          ~sizes:[ p.q; spec.cols ]
      in
      let s_sl =
        Dialects.Cim.slice b stored
          ~offsets:[ rc * p.tile_rows; cc * spec.cols ]
          ~sizes:[ p.tile_rows; spec.cols ]
      in
      let part = Dialects.Cim.similarity_partial b ~query:q_sl ~stored:s_sl ~metric in
      acc :=
        Some
          (match !acc with
          | None -> part
          | Some a -> Dialects.Cim.merge_partial_h b a part)
    done;
    match !acc with
    | Some a ->
        global :=
          Dialects.Cim.merge_partial_v b !global a
            ~offset:(rc * p.tile_rows)
    | None -> ()
  done;
  let results =
    match select with
    | `Topk (k, largest) ->
        let values, indices = Dialects.Cim.select_best b !global ~k ~largest in
        [ values; indices ]
    | `Scores -> [ !global ]
  in
  Dialects.Cim.yield b results;
  (Ir.Op.region (Ir.Builder.finish b), results)

(* Above this tile count the expanded region is replaced by a compact
   single-op form: the wrapper's attributes still drive cam-map, and the
   region stays executable in software, but we avoid materialising
   hundreds of thousands of slice ops for inspection. *)
let default_expand_limit = 4096

let compact_region ~query ~stored ~metric ~select =
  let b = Ir.Builder.create () in
  let results =
    match select with
    | `Topk (k, largest) ->
        let values, indices =
          Dialects.Cim.similarity b ~query ~stored ~metric ~k ~largest
        in
        [ values; indices ]
    | `Scores ->
        [
          Ir.Builder.op1 b ~operands:[ query; stored ]
            ~attrs:[ ("metric", Dialects.Cim.metric_to_attr metric) ]
            Dialects.Cim.similarity_scores_name
            (Ir.Types.tensor
               [
                 List.hd (Ir.Types.shape query.Ir.Value.ty);
                 List.hd (Ir.Types.shape stored.Ir.Value.ty);
               ]
               Ir.Types.F32);
        ]
  in
  Dialects.Cim.yield b results;
  Ir.Op.region (Ir.Builder.finish b)

let rewrite ?(expand_limit = default_expand_limit) spec (exec : Ir.Op.t) =
  let body = Ir.Op.body_ops exec in
  let sim =
    List.find_opt
      (fun (o : Ir.Op.t) ->
        String.equal o.op_name Dialects.Cim.similarity_name
        || String.equal o.op_name Dialects.Cim.similarity_scores_name)
      body
  in
  match sim with
  | None -> ()
  | Some sim ->
      let query = Ir.Op.operand sim 0 and stored = Ir.Op.operand sim 1 in
      let q, d =
        match Ir.Types.shape query.Ir.Value.ty with
        | [ q; d ] -> (q, d)
        | _ -> Ir.Pass.fail ~pass:pass_name "query must be rank-2"
      in
      let n =
        match Ir.Types.shape stored.Ir.Value.ty with
        | [ n; _ ] -> n
        | _ -> Ir.Pass.fail ~pass:pass_name "stored must be rank-2"
      in
      let p = plan spec ~q ~n ~d in
      let metric = Dialects.Cim.metric_of_attr (Ir.Op.attr_exn sim "metric") in
      let select =
        if String.equal sim.op_name Dialects.Cim.similarity_name then
          `Topk
            ( Ir.Attr.as_int (Ir.Op.attr_exn sim "k"),
              Ir.Attr.as_bool (Ir.Op.attr_exn sim "largest") )
        else `Scores
      in
      let region =
        if p.row_chunks * p.col_chunks <= expand_limit then
          fst (expanded_region spec p ~query ~stored ~metric ~select)
        else compact_region ~query ~stored ~metric ~select
      in
      let attrs =
        [
          ("q", Ir.Attr.Int p.q);
          ("n", Ir.Attr.Int p.n);
          ("d", Ir.Attr.Int p.d);
          ("rows", Ir.Attr.Int p.tile_rows);
          ("cols", Ir.Attr.Int spec.cols);
          ("row_chunks", Ir.Attr.Int p.row_chunks);
          ("col_chunks", Ir.Attr.Int p.col_chunks);
          ("batches", Ir.Attr.Int p.batches);
          ("metric", Dialects.Cim.metric_to_attr metric);
          ( "output",
            Ir.Attr.Sym
              (match select with `Topk _ -> "topk" | `Scores -> "scores") );
        ]
        @
        match select with
        | `Topk (k, largest) ->
            [ ("k", Ir.Attr.Int k); ("largest", Ir.Attr.Bool largest) ]
        | `Scores -> [ ("k", Ir.Attr.Int n) ]
      in
      let wrapper =
        Ir.Op.create ~operands:[ query; stored ] ~results:sim.results ~attrs
          ~regions:[ region ]
          Dialects.Cim.partitioned_similarity_name
      in
      let blk = Ir.Op.entry_block exec in
      blk.body <-
        List.map (fun (o : Ir.Op.t) -> if o == sim then wrapper else o) blk.body

let pass ?expand_limit spec =
  Ir.Pass.make pass_name (fun m ->
      Ir.Walk.iter_module
        (fun op ->
          if String.equal op.Ir.Op.op_name Dialects.Cim.execute_name then
            rewrite ?expand_limit spec op)
        m;
      m)
