(** Lowering of plain-matmul cim blocks onto the crossbar device — the
    "other device dialects, such as crossbar" branch of Figure 3.

    Consumes functions of the shape
    [cim.acquire; cim.execute([cim.matmul; yield]); cim.release; return]
    and produces a bufferized function: the weight matrix is split into
    tile-sized blocks, each block programmed into its own crossbar tile,
    inputs streamed through [crossbar.gemv] in parallel over tiles, and
    partial products accumulated into the output buffer. K and N must
    divide by the tile geometry (as with the cam partitioner). *)

val pass : Xbar.spec -> Ir.Pass.t
