let convert_op (op : Ir.Op.t) : Ir.Op.t list =
  match Dialects.Cim.torch_twin op.op_name with
  | None -> [ op ]
  | Some twin ->
      let b = Ir.Builder.create () in
      let dev = Dialects.Cim.acquire b ~device:"cam" in
      (* The inner twin op defines fresh values; the outer execute op
         reuses the original torch results so later uses keep working. *)
      let inner_results =
        List.map (fun (v : Ir.Value.t) -> Ir.Value.fresh v.ty) op.results
      in
      let inner =
        Ir.Op.create ~operands:op.operands ~results:inner_results
          ~attrs:op.attrs twin
      in
      let yield_op =
        Ir.Op.create ~operands:inner_results Dialects.Cim.yield_name
      in
      Ir.Builder.add b
        (Ir.Op.create ~operands:[ dev ] ~results:op.results
           ~regions:[ Ir.Op.region [ inner; yield_op ] ]
           Dialects.Cim.execute_name);
      Dialects.Cim.release b dev;
      Ir.Builder.finish b

let pass =
  Ir.Pass.make "torch-to-cim" (fun m ->
      Ir.Func_ir.map_funcs (Ir.Walk.map_top_ops convert_op) m)
