(** The torch-to-cim conversion (Section III-D): every supported torch
    op is wrapped into its own [cim.acquire] / [cim.execute] /
    [cim.release] triple containing the op's cim twin, mirroring the
    paper's Figure 5a. Ops without a cim twin (only [func.return] in the
    accepted subset) are left untouched. *)

val pass : Ir.Pass.t
