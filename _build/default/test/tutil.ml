(* Shared helpers for the test suites. *)

let () = Dialects.Register_all.register_all ()

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1. (Float.abs expected)
  then
    Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let check_raises_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* A tiny torch-level module used by several suites: the HDC similarity
   kernel at configurable sizes. *)
let hdc_source ?(q = 4) ?(dims = 64) ?(classes = 4) ?(k = 1) () =
  C4cam.Kernels.hdc_dot ~q ~dims ~classes ~k

let hdc_torch ?q ?dims ?classes ?k () =
  Frontend.Emit.compile_string (hdc_source ?q ?dims ?classes ?k ())

let spec32 = Archspec.Spec.square 32 Archspec.Spec.Base

let rows_testable =
  Alcotest.testable
    (fun fmt rows ->
      Format.pp_print_string fmt
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun r ->
                   String.concat ","
                     (Array.to_list (Array.map string_of_float r)))
                 rows))))
    (fun a b -> a = b)

let int_rows_testable =
  Alcotest.testable
    (fun fmt rows ->
      Format.pp_print_string fmt
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun r ->
                   String.concat ","
                     (Array.to_list (Array.map string_of_int r)))
                 rows))))
    (fun a b -> a = b)
