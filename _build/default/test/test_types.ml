(* Unit tests for Ir.Types and Ir.Attr. *)

open Ir

let test_elem_round_trip () =
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "elem round trip"
        (Some (Types.elem_to_string e))
        (Option.map Types.elem_to_string
           (Types.elem_of_string (Types.elem_to_string e))))
    [ Types.F32; F64; I1; I32; I64 ]

let test_to_string () =
  Alcotest.(check string)
    "tensor" "tensor<10x8192xf32>"
    (Types.to_string (Types.tensor [ 10; 8192 ] Types.F32));
  Alcotest.(check string)
    "memref" "memref<4x4xi32>"
    (Types.to_string (Types.memref [ 4; 4 ] Types.I32));
  Alcotest.(check string) "index" "index" (Types.to_string Types.Index);
  Alcotest.(check string)
    "handle" "!cam.bank_id"
    (Types.to_string (Types.Handle "cam.bank_id"));
  Alcotest.(check string)
    "scalar" "f64"
    (Types.to_string (Types.Scalar Types.F64));
  Alcotest.(check string)
    "rank-0 tensor" "tensor<f32>"
    (Types.to_string (Types.tensor [] Types.F32))

let test_equal () =
  Alcotest.(check bool)
    "equal tensors" true
    (Types.equal (Types.tensor [ 2; 3 ] Types.F32)
       (Types.tensor [ 2; 3 ] Types.F32));
  Alcotest.(check bool)
    "different shapes" false
    (Types.equal (Types.tensor [ 2; 3 ] Types.F32)
       (Types.tensor [ 3; 2 ] Types.F32));
  Alcotest.(check bool)
    "tensor vs memref" false
    (Types.equal (Types.tensor [ 2 ] Types.F32)
       (Types.memref [ 2 ] Types.F32));
  Alcotest.(check bool)
    "handles by name" false
    (Types.equal (Types.Handle "a") (Types.Handle "b"))

let test_shape_accessors () =
  Alcotest.(check (list int))
    "shape" [ 2; 3 ]
    (Types.shape (Types.tensor [ 2; 3 ] Types.F32));
  Alcotest.(check int)
    "num_elements tensor" 6
    (Types.num_elements (Types.tensor [ 2; 3 ] Types.F32));
  Alcotest.(check int)
    "num_elements scalar" 1
    (Types.num_elements (Types.Scalar Types.F32));
  Tutil.check_raises_invalid "shape of scalar" (fun () ->
      Types.shape (Types.Scalar Types.F32));
  Tutil.check_raises_invalid "element of index" (fun () ->
      Types.element Types.Index);
  Alcotest.(check bool)
    "is_shaped" true
    (Types.is_shaped (Types.memref [ 1 ] Types.I1));
  Alcotest.(check bool) "index not shaped" false (Types.is_shaped Types.Index)

let test_with_shape () =
  Alcotest.(check string)
    "with_shape keeps kind" "memref<7x1xf32>"
    (Types.to_string
       (Types.with_shape (Types.memref [ 2; 3 ] Types.F32) [ 7; 1 ]));
  Tutil.check_raises_invalid "with_shape on handle" (fun () ->
      Types.with_shape (Types.Handle "x") [ 1 ])

let test_attr_accessors () =
  Alcotest.(check int) "as_int" 5 (Attr.as_int (Attr.Int 5));
  Tutil.check_float "as_float of int" 5. (Attr.as_float (Attr.Int 5));
  Alcotest.(check bool) "as_bool" true (Attr.as_bool (Attr.Bool true));
  Alcotest.(check string) "as_str" "hi" (Attr.as_str (Attr.Str "hi"));
  Alcotest.(check string) "as_sym" "exact" (Attr.as_sym (Attr.Sym "exact"));
  Alcotest.(check (list int))
    "as_ints" [ 1; -2 ]
    (Attr.as_ints (Attr.Ints [ 1; -2 ]));
  Tutil.check_raises_invalid "as_int of str" (fun () ->
      Attr.as_int (Attr.Str "x"))

let test_attr_equal () =
  Alcotest.(check bool)
    "ints equal" true
    (Attr.equal (Attr.Ints [ 1; 2 ]) (Attr.Ints [ 1; 2 ]));
  Alcotest.(check bool)
    "sym vs str differ" false
    (Attr.equal (Attr.Sym "a") (Attr.Str "a"));
  Alcotest.(check bool)
    "type attrs" true
    (Attr.equal
       (Attr.Type_attr (Types.tensor [ 1 ] Types.F32))
       (Attr.Type_attr (Types.tensor [ 1 ] Types.F32)))

let test_attr_find () =
  let attrs = [ ("a", Attr.Int 1); ("b", Attr.Bool false) ] in
  Alcotest.(check bool) "find present" true (Attr.find attrs "b" <> None);
  Alcotest.(check bool) "find absent" true (Attr.find attrs "c" = None);
  Alcotest.check_raises "get absent" Not_found (fun () ->
      ignore (Attr.get attrs "zz"))

let () =
  Alcotest.run "types"
    [
      ( "types",
        [
          Alcotest.test_case "elem round trip" `Quick test_elem_round_trip;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "shape accessors" `Quick test_shape_accessors;
          Alcotest.test_case "with_shape" `Quick test_with_shape;
        ] );
      ( "attrs",
        [
          Alcotest.test_case "accessors" `Quick test_attr_accessors;
          Alcotest.test_case "equality" `Quick test_attr_equal;
          Alcotest.test_case "find/get" `Quick test_attr_find;
        ] );
    ]
