(* Architecture auto-tuning and the area model. *)

let data =
  lazy
    (Workloads.Hdc.synthetic ~seed:51 ~dims:512 ~n_classes:8 ~n_queries:12
       ~bits:1 ())

let candidates =
  lazy
    (C4cam.Autotune.evaluate_hdc ~sides:[ 16; 32; 64 ]
       ~data:(Lazy.force data) ())

let test_grid_size () =
  Alcotest.(check int) "3 sides x 4 opts" 12
    (List.length (Lazy.force candidates))

let test_best_is_minimal () =
  let cs = Lazy.force candidates in
  List.iter
    (fun obj ->
      let b = C4cam.Autotune.best obj cs in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (C4cam.Autotune.objective_to_string obj ^ " minimal")
            true
            (C4cam.Autotune.value obj b <= C4cam.Autotune.value obj c))
        cs)
    C4cam.Autotune.[ Min_latency; Min_energy; Min_power; Min_edp; Min_area ]

let test_best_empty_rejected () =
  Tutil.check_raises_invalid "empty candidates" (fun () ->
      C4cam.Autotune.best C4cam.Autotune.Min_latency [])

let test_expected_winners () =
  let cs = Lazy.force candidates in
  (* fastest = smallest base subarray; lowest power = power+density *)
  let fastest = C4cam.Autotune.best C4cam.Autotune.Min_latency cs in
  Alcotest.(check bool) "latency winner is a base config" true
    (fastest.spec.optimization = Archspec.Spec.Base);
  let coolest = C4cam.Autotune.best C4cam.Autotune.Min_power cs in
  Alcotest.(check bool) "power winner restricts activation" true
    (match coolest.spec.optimization with
    | Archspec.Spec.Power | Archspec.Spec.Power_density
    | Archspec.Spec.Density -> true
    | Archspec.Spec.Base -> false)

let test_pareto_front () =
  let cs = Lazy.force candidates in
  let f (c : C4cam.Autotune.candidate) = c.measurement.latency in
  let g (c : C4cam.Autotune.candidate) = c.measurement.power in
  let front = C4cam.Autotune.pareto f g cs in
  Alcotest.(check bool) "front is non-empty and not everything" true
    (List.length front >= 1 && List.length front <= List.length cs);
  (* no front member dominates another *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "no domination inside the front" false
              (f a <= f b && g a <= g b && (f a < f b || g a < g b)))
        front)
    front;
  (* the front is sorted by the first objective *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> f a <= f b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted front);
  (* every candidate is dominated by or equal to someone on the front *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "covered by front" true
        (List.exists (fun p -> f p <= f c && g p <= g c) front))
    cs

(* ---- area model -------------------------------------------------------- *)

let tech = Camsim.Tech.fefet_45nm

let test_area_monotone_in_cells () =
  let a16 = Camsim.Area_model.subarray_area tech ~rows:16 ~cols:16 in
  let a64 = Camsim.Area_model.subarray_area tech ~rows:64 ~cols:64 in
  Alcotest.(check bool) "bigger subarray, bigger area" true (a64 > a16);
  Alcotest.(check bool) "positive" true (a16 > 0.)

let test_iso_capacity_not_iso_area () =
  (* Same cells per array, more subarrays -> more peripherals -> more
     area (the paper's explicit caveat). *)
  let area side =
    let spec = C4cam.Dse.iso_capacity_spec ~side Archspec.Spec.Base in
    Camsim.Area_model.array_area tech ~spec
  in
  Alcotest.(check bool) "16x16 array larger than 256x256" true
    (area 16 > 1.5 *. area 256)

let test_peripheral_fraction_shrinks () =
  let frac side =
    Camsim.Area_model.peripheral_fraction tech
      ~spec:(Archspec.Spec.square side Archspec.Spec.Base)
  in
  Alcotest.(check bool) "peripheral share falls with subarray size" true
    (frac 16 > frac 64 && frac 64 > frac 256);
  Alcotest.(check bool) "fractions are sane" true
    (frac 16 < 1. && frac 256 > 0.)

let test_chip_area_linear_in_banks () =
  let spec = Archspec.Spec.square 32 Archspec.Spec.Base in
  let one = Camsim.Area_model.chip_area tech ~spec ~banks:1 in
  let four = Camsim.Area_model.chip_area tech ~spec ~banks:4 in
  Tutil.check_float ~eps:1e-12 "linear in banks" (4. *. one) four

let () =
  Alcotest.run "autotune"
    [
      ( "search",
        [
          Alcotest.test_case "grid size" `Quick test_grid_size;
          Alcotest.test_case "best is minimal" `Quick test_best_is_minimal;
          Alcotest.test_case "empty rejected" `Quick test_best_empty_rejected;
          Alcotest.test_case "expected winners" `Quick test_expected_winners;
          Alcotest.test_case "pareto front" `Quick test_pareto_front;
        ] );
      ( "area",
        [
          Alcotest.test_case "monotone" `Quick test_area_monotone_in_cells;
          Alcotest.test_case "iso-capacity is not iso-area" `Quick
            test_iso_capacity_not_iso_area;
          Alcotest.test_case "peripheral fraction" `Quick
            test_peripheral_fraction_shrinks;
          Alcotest.test_case "linear in banks" `Quick
            test_chip_area_linear_in_banks;
        ] );
    ]
