(* Workloads: PRNG determinism, datasets, distances, HDC pipeline, KNN. *)

open Workloads

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Tutil.check_float ~eps:0. "same stream" (Prng.float a) (Prng.float b)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.float (Prng.create 42) <> Prng.float c)

let test_prng_ranges () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let f = Prng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.);
    let i = Prng.int r 10 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 10)
  done;
  Tutil.check_raises_invalid "bad bound" (fun () -> Prng.int r 0)

let test_prng_uniformity () =
  let r = Prng.create 7 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let i = Prng.int r 4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_gaussian_moments () =
  let r = Prng.create 11 in
  let n = 20000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let g = Prng.gaussian r in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.) < 0.1)

let test_shuffle_permutes () =
  let r = Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle r b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a);
  Alcotest.(check bool) "actually shuffled" true (a <> b)

(* ---- distances --------------------------------------------------------- *)

let test_distances () =
  let a = [| 1.; 0.; 1.; 1. |] and b = [| 1.; 1.; 0.; 1. |] in
  Tutil.check_float "hamming" 2. (Distance.hamming a b);
  Tutil.check_float "dot" 2. (Distance.dot a b);
  Tutil.check_float "euclidean_sq" 2. (Distance.euclidean_sq a b);
  Tutil.check_float "euclidean" (sqrt 2.) (Distance.euclidean a b);
  Tutil.check_float "norm2" (sqrt 3.) (Distance.norm2 a);
  Tutil.check_float "cosine" (2. /. 3.) (Distance.cosine a b);
  Tutil.check_float "cosine zero vector" 0.
    (Distance.cosine a [| 0.; 0.; 0.; 0. |]);
  Tutil.check_raises_invalid "length mismatch" (fun () ->
      Distance.hamming a [| 1. |])

let test_topk_and_arg () =
  let v = [| 5.; 1.; 3.; 1. |] in
  Alcotest.(check bool) "topk smallest" true
    (Distance.topk ~k:2 v = [| (1., 1); (1., 3) |]);
  Alcotest.(check bool) "topk largest" true
    (Distance.topk ~largest:true ~k:1 v = [| (5., 0) |]);
  Alcotest.(check int) "argmin" 1 (Distance.argmin v);
  Alcotest.(check int) "argmax" 0 (Distance.argmax v);
  Tutil.check_raises_invalid "k too big" (fun () ->
      ignore (Distance.topk ~k:9 v))

let prop_hamming_triangle =
  QCheck.Test.make ~count:200 ~name:"hamming triangle inequality"
    QCheck.(
      triple
        (array_of_size (Gen.return 16) (QCheck.map float_of_int small_nat))
        (array_of_size (Gen.return 16) (QCheck.map float_of_int small_nat))
        (array_of_size (Gen.return 16) (QCheck.map float_of_int small_nat)))
    (fun (a, b, c) ->
      Distance.hamming a c <= Distance.hamming a b +. Distance.hamming b c)

(* ---- datasets ---------------------------------------------------------- *)

let test_mnist_like () =
  let ds =
    Dataset.mnist_like ~seed:1 ~n_features:20 ~n_classes:3
      ~samples_per_class:5 ()
  in
  Alcotest.(check int) "samples" 15 (Dataset.n_samples ds);
  Alcotest.(check int) "features" 20 (Dataset.n_features ds);
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "pixel range" true (v >= 0. && v <= 1.))
        row)
    ds.features

let test_dataset_deterministic () =
  let d1 = Dataset.mnist_like ~seed:5 ~n_features:8 ~n_classes:2 ~samples_per_class:3 () in
  let d2 = Dataset.mnist_like ~seed:5 ~n_features:8 ~n_classes:2 ~samples_per_class:3 () in
  Alcotest.(check bool) "same data" true (d1.features = d2.features)

let test_split () =
  let ds =
    Dataset.pneumonia_like ~seed:2 ~n_features:10 ~samples_per_class:50 ()
  in
  let train, test = Dataset.split ~seed:1 ds ~train_fraction:0.8 in
  Alcotest.(check int) "train size" 80 (Dataset.n_samples train);
  Alcotest.(check int) "test size" 20 (Dataset.n_samples test);
  Tutil.check_raises_invalid "bad fraction" (fun () ->
      ignore (Dataset.split ds ~train_fraction:1.5))

(* ---- HDC --------------------------------------------------------------- *)

let hdc_config = { Hdc.default_config with dims = 512; levels = 8 }

let test_item_memory_shapes () =
  let im = Hdc.item_memory hdc_config ~n_features:16 in
  let hv = Hdc.encode hdc_config im (Array.make 16 0.5) in
  Alcotest.(check int) "hv dims" 512 (Array.length hv);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "binary values" true (v = 0. || v = 1.))
    hv

let test_encoding_locality () =
  (* Similar inputs encode to similar hypervectors; dissimilar inputs to
     near-orthogonal ones. *)
  let im = Hdc.item_memory hdc_config ~n_features:32 in
  let rng = Prng.create 9 in
  let x = Array.init 32 (fun _ -> Prng.float rng) in
  let x_near = Array.map (fun v -> Float.min 1. (v +. 0.02)) x in
  let y = Array.init 32 (fun _ -> Prng.float rng) in
  let e = Hdc.encode hdc_config im in
  let d_near = Distance.hamming (e x) (e x_near) in
  let d_far = Distance.hamming (e x) (e y) in
  Alcotest.(check bool)
    (Printf.sprintf "near %g < far %g" d_near d_far)
    true (d_near < d_far)

let test_hdc_train_and_accuracy () =
  let ds =
    Dataset.mnist_like ~seed:5 ~n_features:32 ~n_classes:4
      ~samples_per_class:20 ()
  in
  let train, test = Dataset.split ~seed:9 ds ~train_fraction:0.75 in
  let im, model = Hdc.train hdc_config train in
  let acc = Hdc.accuracy_ref model im test in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f > 0.8" acc)
    true (acc > 0.8);
  Alcotest.(check int) "4 prototypes" 4 (Array.length model.class_hvs)

let test_hdc_multibit_values () =
  let config = { hdc_config with bits = 2 } in
  let ds =
    Dataset.mnist_like ~seed:5 ~n_features:16 ~n_classes:2
      ~samples_per_class:8 ()
  in
  let _, model = Hdc.train config ds in
  Array.iter
    (Array.iter (fun v ->
         Alcotest.(check bool) "2-bit prototype values" true
           (v >= 0. && v <= 3. && Float.is_integer v)))
    model.class_hvs

let test_synthetic_hdc () =
  let s = Hdc.synthetic ~seed:4 ~dims:128 ~n_classes:5 ~n_queries:20 ~bits:1 () in
  Alcotest.(check int) "stored" 5 (Array.length s.stored);
  Alcotest.(check int) "queries" 20 (Array.length s.queries);
  (* noisy queries stay closest to their own prototype *)
  let correct = ref 0 in
  Array.iteri
    (fun i q ->
      let dists = Array.map (Distance.hamming q) s.stored in
      if Distance.argmin dists = s.query_labels.(i) then incr correct)
    s.queries;
  Alcotest.(check bool) "nearly all classified" true (!correct >= 18)

(* ---- KNN --------------------------------------------------------------- *)

let test_knn_classify () =
  let train =
    {
      Dataset.features =
        [| [| 0.; 0. |]; [| 0.; 1. |]; [| 10.; 10. |]; [| 10.; 11. |] |];
      labels = [| 0; 0; 1; 1 |];
      n_classes = 2;
    }
  in
  Alcotest.(check int) "near cluster 0" 0
    (Knn.classify ~train ~k:3 [| 0.5; 0.5 |]);
  Alcotest.(check int) "near cluster 1" 1
    (Knn.classify ~train ~k:3 [| 9.; 10. |]);
  let nn = Knn.neighbours ~train ~k:2 [| 0.; 0. |] in
  Alcotest.(check int) "first neighbour" 0 (snd nn.(0))

let test_knn_accuracy () =
  let ds =
    Dataset.pneumonia_like ~seed:8 ~n_features:32 ~samples_per_class:60 ()
  in
  let train, test = Dataset.split ~seed:2 ds ~train_fraction:0.8 in
  let acc = Knn.accuracy ~train ~test ~k:5 in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f > 0.85" acc)
    true (acc > 0.85)

let () =
  Alcotest.run "workloads"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
        ] );
      ( "distance",
        [
          Alcotest.test_case "metrics" `Quick test_distances;
          Alcotest.test_case "topk/argmin" `Quick test_topk_and_arg;
          QCheck_alcotest.to_alcotest prop_hamming_triangle;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "mnist-like" `Quick test_mnist_like;
          Alcotest.test_case "deterministic" `Quick test_dataset_deterministic;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ( "hdc",
        [
          Alcotest.test_case "item memory" `Quick test_item_memory_shapes;
          Alcotest.test_case "encoding locality" `Quick test_encoding_locality;
          Alcotest.test_case "train/accuracy" `Quick test_hdc_train_and_accuracy;
          Alcotest.test_case "multi-bit values" `Quick test_hdc_multibit_values;
          Alcotest.test_case "synthetic" `Quick test_synthetic_hdc;
        ] );
      ( "knn",
        [
          Alcotest.test_case "classify" `Quick test_knn_classify;
          Alcotest.test_case "accuracy" `Quick test_knn_accuracy;
        ] );
    ]
