(* Architecture specification: defaults, presets, parsing, round trips. *)

open Archspec

let test_default () =
  Alcotest.(check int) "rows" 32 Spec.default.rows;
  Alcotest.(check int) "subarrays" 8 Spec.default.subarrays_per_array;
  Alcotest.(check int) "arrays" 4 Spec.default.arrays_per_mat;
  Alcotest.(check int) "mats" 4 Spec.default.mats_per_bank;
  Alcotest.(check bool) "banks auto" true (Spec.default.max_banks = None);
  Alcotest.(check int) "128 subarrays per bank" 128
    (Spec.subarrays_per_bank Spec.default)

let test_square () =
  let s = Spec.square 64 Spec.Power in
  Alcotest.(check int) "rows" 64 s.rows;
  Alcotest.(check int) "cols" 64 s.cols;
  Alcotest.(check bool) "power serializes subarrays" true
    (s.subarray_mode = Spec.Sequential);
  Alcotest.(check int) "cells" 4096 (Spec.cells_per_subarray s)

let test_with_optimization () =
  let s = Spec.with_optimization Spec.default Spec.Density in
  Alcotest.(check bool) "density keeps parallel" true
    (s.subarray_mode = Spec.Parallel);
  let p = Spec.with_optimization Spec.default Spec.Power_density in
  Alcotest.(check bool) "power+density serializes" true
    (p.subarray_mode = Spec.Sequential)

let test_to_string_round_trip () =
  List.iter
    (fun s ->
      match Spec.of_string (Spec.to_string s) with
      | Ok s' ->
          Alcotest.(check string) "round trip" (Spec.to_string s)
            (Spec.to_string s')
      | Error e -> Alcotest.fail e)
    [
      Spec.default;
      Spec.square 16 Spec.Power_density;
      { Spec.default with max_banks = Some 7; cam_kind = Spec.Acam; bits = 3 };
      { Spec.default with bank_mode = Spec.Sequential };
    ]

let test_parse_config () =
  let src =
    "# paper configuration\n\
     rows = 32\n\
     cols = 64   # wide subarray\n\
     subarrays_per_array = 8\n\
     cam = mcam\n\
     bits = 2\n\
     optimization = power\n\
     banks = auto\n"
  in
  match Spec.of_string src with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "cols" 64 s.cols;
      Alcotest.(check bool) "kind" true (s.cam_kind = Spec.Mcam);
      Alcotest.(check int) "bits" 2 s.bits;
      Alcotest.(check bool) "power applied" true
        (s.subarray_mode = Spec.Sequential)

let test_parse_aliases () =
  (* the paper names the targets latency/power/utilization *)
  List.iter
    (fun (alias, expect) ->
      match Spec.of_string ("optimization = " ^ alias) with
      | Ok s ->
          Alcotest.(check string) alias
            (Spec.optimization_to_string expect)
            (Spec.optimization_to_string s.optimization)
      | Error e -> Alcotest.fail e)
    [
      ("latency", Spec.Base); ("power", Spec.Power);
      ("utilization", Spec.Density); ("power+density", Spec.Power_density);
    ]

let test_parse_errors () =
  let bad what src =
    match Spec.of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected an error" what
  in
  bad "unknown key" "wombats = 3";
  bad "bad integer" "rows = many";
  bad "no equals" "rows 32";
  bad "unknown mode" "bank_mode = diagonal";
  bad "zero size" "rows = 0";
  bad "huge bits" "bits = 9"

let test_validate () =
  Alcotest.(check bool) "default validates" true
    (Spec.validate Spec.default = Ok ());
  Alcotest.(check bool) "negative banks rejected" true
    (Spec.validate { Spec.default with max_banks = Some 0 } <> Ok ())

let test_load_missing_file () =
  match Spec.load "/nonexistent/path/c4cam.conf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let prop_round_trip =
  let gen =
    QCheck.Gen.(
      let* rows = int_range 1 512 in
      let* cols = int_range 1 512 in
      let* s = int_range 1 16 in
      let* a = int_range 1 16 in
      let* t = int_range 1 16 in
      let* banks = oneof [ return None; map (fun b -> Some b) (int_range 1 64) ] in
      let* kind = oneofl Spec.[ Tcam; Bcam; Mcam; Acam ] in
      let* bits = int_range 1 8 in
      let* opt = oneofl Spec.[ Base; Power; Density; Power_density ] in
      return
        (Spec.with_optimization
           {
             Spec.default with
             rows; cols; subarrays_per_array = s; arrays_per_mat = a;
             mats_per_bank = t; max_banks = banks; cam_kind = kind; bits;
           }
           opt))
  in
  QCheck.Test.make ~count:200 ~name:"spec text round trip" (QCheck.make gen)
    (fun s ->
      match Spec.of_string (Spec.to_string s) with
      | Ok s' -> Spec.to_string s = Spec.to_string s'
      | Error _ -> false)

let () =
  Alcotest.run "archspec"
    [
      ( "presets",
        [
          Alcotest.test_case "default" `Quick test_default;
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "with_optimization" `Quick test_with_optimization;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "round trip" `Quick test_to_string_round_trip;
          Alcotest.test_case "config file" `Quick test_parse_config;
          Alcotest.test_case "optimization aliases" `Quick test_parse_aliases;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          QCheck_alcotest.to_alcotest prop_round_trip;
        ] );
    ]
