(* Hierarchy simulator: allocation discipline, stats ledger, functional
   search/read/select. *)

open Camsim

let sim ?(spec = Tutil.spec32) () = Simulator.create spec

let alloc_chain s =
  let bank = Simulator.alloc_bank s ~rows:32 ~cols:32 in
  let mat = Simulator.alloc_mat s bank in
  let arr = Simulator.alloc_array s mat in
  let sub = Simulator.alloc_subarray s arr in
  (bank, mat, arr, sub)

let test_alloc_and_stats () =
  let s = sim () in
  let _ = alloc_chain s in
  let st = Simulator.stats s in
  Alcotest.(check int) "banks" 1 st.n_banks;
  Alcotest.(check int) "mats" 1 st.n_mats;
  Alcotest.(check int) "arrays" 1 st.n_arrays;
  Alcotest.(check int) "subarrays" 1 st.n_subarrays

let test_capacity_limits () =
  let s = sim () in
  let bank = Simulator.alloc_bank s ~rows:32 ~cols:32 in
  (* 4 mats per bank in the default spec *)
  for _ = 1 to 4 do
    ignore (Simulator.alloc_mat s bank)
  done;
  Alcotest.(check bool) "fifth mat rejected" true
    (match Simulator.alloc_mat s bank with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_max_banks_enforced () =
  let s = sim ~spec:{ Tutil.spec32 with max_banks = Some 1 } () in
  ignore (Simulator.alloc_bank s ~rows:32 ~cols:32);
  Alcotest.(check bool) "second bank rejected" true
    (match Simulator.alloc_bank s ~rows:32 ~cols:32 with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_geometry_must_match_spec () =
  let s = sim () in
  Alcotest.(check bool) "wrong geometry rejected" true
    (match Simulator.alloc_bank s ~rows:16 ~cols:16 with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_parent_kind_checked () =
  let s = sim () in
  let bank = Simulator.alloc_bank s ~rows:32 ~cols:32 in
  Alcotest.(check bool) "array from bank rejected" true
    (match Simulator.alloc_array s bank with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_write_search_read () =
  let s = sim () in
  let _, _, _, sub = alloc_chain s in
  let stored = [| [| 0.; 1.; 0. |]; [| 1.; 1.; 1. |] |] in
  let _ = Simulator.write s sub ~row_offset:0 stored in
  let c =
    Simulator.search s sub
      ~queries:[| [| 0.; 1.; 0. |] |]
      ~row_offset:0 ~rows:2 ~kind:`Best ~metric:`Hamming ()
  in
  Alcotest.(check bool) "search has a cost" true (c.latency > 0.);
  let r = Simulator.read s sub in
  Tutil.check_float "match" 0. r.(0).(0);
  Tutil.check_float "two off" 2. r.(0).(1);
  let st = Simulator.stats s in
  Alcotest.(check int) "one search op" 1 st.n_search_ops;
  Alcotest.(check int) "one query cycle" 1 st.n_query_cycles;
  Alcotest.(check int) "one write" 1 st.n_write_ops;
  Alcotest.(check bool) "energy recorded" true
    (st.e_search > 0. && st.e_write > 0.)

let test_write_ternary () =
  let s = sim () in
  let _, _, _, sub = alloc_chain s in
  let _ =
    Simulator.write_ternary s sub ~row_offset:0
      ~care:[| [| true; false |] |]
      [| [| 1.; 0. |] |]
  in
  let _ =
    Simulator.search s sub ~queries:[| [| 1.; 1. |] |] ~row_offset:0 ~rows:1
      ~kind:`Best ~metric:`Hamming ()
  in
  Tutil.check_float "wildcard ignored" 0. (Simulator.read s sub).(0).(0)

let test_select_best () =
  let s = sim () in
  let dist = [| [| 3.; 1.; 2. |]; [| 0.; 5.; 0. |] |] in
  let (values, indices), cost =
    Simulator.select_best s ~dist ~k:2 ~largest:false
  in
  Alcotest.(check Tutil.int_rows_testable) "indices"
    [| [| 1; 2 |]; [| 0; 2 |] |]
    indices;
  Alcotest.(check Tutil.rows_testable) "values"
    [| [| 1.; 2. |]; [| 0.; 0. |] |]
    values;
  Alcotest.(check bool) "select cost" true (cost.latency > 0.);
  let (_, idx_l), _ = Simulator.select_best s ~dist ~k:1 ~largest:true in
  Alcotest.(check Tutil.int_rows_testable) "largest" [| [| 0 |]; [| 1 |] |]
    idx_l

let test_threshold_search () =
  let s = sim () in
  let _, _, _, sub = alloc_chain s in
  let _ =
    Simulator.write s sub ~row_offset:0
      [| [| 0.; 0.; 0. |]; [| 0.; 1.; 1. |]; [| 1.; 1.; 1. |] |]
  in
  let _ =
    Simulator.search s sub ~queries:[| [| 0.; 0.; 0. |] |] ~row_offset:0
      ~rows:3 ~kind:`Threshold ~metric:`Hamming ~threshold:1.5 ()
  in
  Alcotest.(check Tutil.rows_testable) "rows within distance 1.5 match"
    [| [| 1.; 0.; 0. |] |]
    (Simulator.read s sub);
  (* threshold 0 behaves like exact match *)
  let _ =
    Simulator.search s sub ~queries:[| [| 0.; 1.; 1. |] |] ~row_offset:0
      ~rows:3 ~kind:`Threshold ~metric:`Hamming ~threshold:0. ()
  in
  Alcotest.(check Tutil.rows_testable) "exact row flagged"
    [| [| 0.; 1.; 0. |] |]
    (Simulator.read s sub)

let test_range_search_via_simulator () =
  let s = sim () in
  let _, _, _, sub = alloc_chain s in
  (* program an ACAM range row directly through the subarray API *)
  let _ = Simulator.write s sub ~row_offset:0 [| [| 0.; 0. |] |] in
  let _ =
    Simulator.search s sub ~queries:[| [| 0.; 0. |] |] ~row_offset:0 ~rows:1
      ~kind:`Range ~metric:`Hamming ()
  in
  Tutil.check_float "plain values behave as point ranges" 0.
    (Simulator.read s sub).(0).(0)

let test_select_best_k_too_large () =
  let s = sim () in
  Alcotest.(check bool) "k > n rejected" true
    (match Simulator.select_best s ~dist:[| [| 1. |] |] ~k:2 ~largest:false with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_query_hint_scales_overhead () =
  let run hint =
    let s = sim () in
    Simulator.set_query_hint s hint;
    let _ = alloc_chain s in
    (Simulator.stats s).e_overhead
  in
  let e1 = run 1 and e10 = run 10 in
  Tutil.check_float ~eps:1e-9 "overhead linear in queries" (10. *. e1) e10

let test_energy_ledger_totals () =
  let s = sim () in
  let _, _, _, sub = alloc_chain s in
  let _ = Simulator.write s sub ~row_offset:0 [| [| 0.; 1. |] |] in
  let _ =
    Simulator.search s sub ~queries:[| [| 0.; 1. |] |] ~row_offset:0 ~rows:1
      ~kind:`Best ~metric:`Hamming ()
  in
  let _ = Simulator.merge s ~elems:10 in
  let _, _ = Simulator.select_best s ~dist:[| [| 1.; 0. |] |] ~k:1 ~largest:false in
  let st = Simulator.stats s in
  Tutil.check_float ~eps:1e-12 "total is the sum of categories"
    (st.e_search +. st.e_write +. st.e_merge +. st.e_select +. st.e_overhead)
    (Stats.total_energy st)

let test_stats_reset_and_print () =
  let s = sim () in
  let _ = alloc_chain s in
  let st = Simulator.stats s in
  Alcotest.(check bool) "to_string mentions banks" true
    (String.length (Stats.to_string st) > 20);
  Stats.reset st;
  Alcotest.(check int) "reset banks" 0 st.n_banks;
  Tutil.check_float "reset energy" 0. (Stats.total_energy st)

let test_trace_records_operations () =
  let trace = Camsim.Trace.create () in
  let s = Simulator.create ~trace Tutil.spec32 in
  let _, _, _, sub = alloc_chain s in
  let _ = Simulator.write s sub ~row_offset:0 [| [| 0.; 1. |] |] in
  let _ =
    Simulator.search s sub ~queries:[| [| 0.; 1. |] |] ~row_offset:0 ~rows:1
      ~kind:`Best ~metric:`Hamming ()
  in
  let events = Camsim.Trace.events trace in
  let count pred = List.length (List.filter pred events) in
  Alcotest.(check int) "4 allocs" 4
    (count (function Camsim.Trace.Alloc _ -> true | _ -> false));
  Alcotest.(check int) "1 write" 1
    (count (function Camsim.Trace.Write _ -> true | _ -> false));
  Alcotest.(check int) "1 search" 1
    (count (function Camsim.Trace.Search _ -> true | _ -> false));
  Alcotest.(check bool) "dump is readable" true
    (String.length (Camsim.Trace.dump trace) > 40)

let test_trace_ring_buffer () =
  let trace = Camsim.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Camsim.Trace.record trace (Camsim.Trace.Merge { elems = i })
  done;
  Alcotest.(check int) "total counts everything" 5
    (Camsim.Trace.total_recorded trace);
  Alcotest.(check bool) "keeps the last three" true
    (Camsim.Trace.events trace
    = [ Camsim.Trace.Merge { elems = 3 }; Merge { elems = 4 };
        Merge { elems = 5 } ])

let test_defect_injection () =
  (* rate 0: bits are stored faithfully *)
  let run rate =
    let s = Simulator.create ~defect_rate:rate ~defect_seed:7 Tutil.spec32 in
    let _, _, _, sub = alloc_chain s in
    let zeros = [| Array.make 32 0. |] in
    let _ = Simulator.write s sub ~row_offset:0 zeros in
    let _ =
      Simulator.search s sub ~queries:zeros ~row_offset:0 ~rows:1
        ~kind:`Best ~metric:`Hamming ()
    in
    (Simulator.read s sub).(0).(0)
  in
  Tutil.check_float "no defects, exact match" 0. (run 0.);
  let flipped = run 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy defects flip cells (%g mismatches)" flipped)
    true
    (flipped > 5. && flipped < 28.);
  (* determinism: same seed, same corruption *)
  Tutil.check_float "deterministic given the seed" flipped (run 0.5);
  Alcotest.(check bool) "invalid rate rejected" true
    (match Simulator.create ~defect_rate:1.5 Tutil.spec32 with
    | _ -> false
    | exception Simulator.Error _ -> true)

let test_invalid_spec_rejected () =
  Alcotest.(check bool) "zero rows rejected" true
    (match Simulator.create { Tutil.spec32 with rows = 0 } with
    | _ -> false
    | exception Simulator.Error _ -> true)

let () =
  Alcotest.run "simulator"
    [
      ( "allocation",
        [
          Alcotest.test_case "chain and stats" `Quick test_alloc_and_stats;
          Alcotest.test_case "capacity limits" `Quick test_capacity_limits;
          Alcotest.test_case "max banks" `Quick test_max_banks_enforced;
          Alcotest.test_case "geometry check" `Quick
            test_geometry_must_match_spec;
          Alcotest.test_case "parent kinds" `Quick test_parent_kind_checked;
          Alcotest.test_case "invalid spec" `Quick test_invalid_spec_rejected;
        ] );
      ( "operations",
        [
          Alcotest.test_case "write/search/read" `Quick test_write_search_read;
          Alcotest.test_case "ternary write" `Quick test_write_ternary;
          Alcotest.test_case "select_best" `Quick test_select_best;
          Alcotest.test_case "threshold search" `Quick test_threshold_search;
          Alcotest.test_case "range kind" `Quick
            test_range_search_via_simulator;
          Alcotest.test_case "select k too large" `Quick
            test_select_best_k_too_large;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "query hint" `Quick
            test_query_hint_scales_overhead;
          Alcotest.test_case "totals" `Quick test_energy_ledger_totals;
          Alcotest.test_case "reset and print" `Quick
            test_stats_reset_and_print;
        ] );
      ( "trace & defects",
        [
          Alcotest.test_case "trace records" `Quick
            test_trace_records_operations;
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
          Alcotest.test_case "defect injection" `Quick test_defect_injection;
        ] );
    ]
