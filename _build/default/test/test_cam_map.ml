(* cam-map: allocation arithmetic, emitted loop structure, the cam-power
   rewrite, and stats of the executed mapping. *)

open Ir

let compile ?(opt = Archspec.Spec.Base) ?(side = 16) ?(q = 4) ?(dims = 64)
    ?(classes = 4) () =
  let spec = Archspec.Spec.square side opt in
  C4cam.Driver.compile ~spec (Tutil.hdc_source ~q ~dims ~classes ())

let test_mapping_arithmetic () =
  let spec = Archspec.Spec.square 32 Archspec.Spec.Base in
  let m = Passes.Cam_map.mapping_of spec ~row_chunks:1 ~col_chunks:256 ~batches:1 in
  Alcotest.(check int) "tiles" 256 m.tiles;
  Alcotest.(check int) "slots" 256 m.slots;
  Alcotest.(check int) "banks (128 slots per bank)" 2 m.banks;
  let md = Passes.Cam_map.mapping_of spec ~row_chunks:1 ~col_chunks:256 ~batches:3 in
  Alcotest.(check int) "density slots" 86 md.slots;
  Alcotest.(check int) "density banks" 1 md.banks

let test_mapping_respects_max_banks () =
  let spec =
    { (Archspec.Spec.square 32 Archspec.Spec.Base) with max_banks = Some 1 }
  in
  match Passes.Cam_map.mapping_of spec ~row_chunks:1 ~col_chunks:256 ~batches:1 with
  | _ -> Alcotest.fail "expected a pass error for bank overflow"
  | exception Pass.Pass_error _ -> ()

let loop_kinds (m : Func_ir.modul) =
  let fn = Func_ir.find_func_exn m "forward" in
  Walk.collect
    (fun o ->
      String.equal o.Op.op_name "scf.parallel"
      || String.equal o.Op.op_name "scf.for")
    fn
  |> List.map (fun (o : Op.t) -> o.op_name)

let test_base_loops_parallel () =
  let c = compile () in
  (* bank, mat, array, subarray parallel; the batch loop is a for *)
  Alcotest.(check (list string)) "loop kinds"
    [ "scf.parallel"; "scf.parallel"; "scf.parallel"; "scf.parallel";
      "scf.for" ]
    (loop_kinds c.cam_ir)

let test_power_serializes_subarray_loop () =
  let c = compile ~opt:Archspec.Spec.Power () in
  Alcotest.(check (list string)) "subarray loop sequential"
    [ "scf.parallel"; "scf.parallel"; "scf.parallel"; "scf.for"; "scf.for" ]
    (loop_kinds c.cam_ir)

let test_subarray_loop_detection () =
  let c = compile () in
  Alcotest.(check int) "one subarray loop" 1
    (List.length (Passes.Cam_opt.subarray_loops c.cam_ir))

let test_cam_ops_present () =
  let c = compile () in
  let fn = Func_ir.find_func_exn c.cam_ir "forward" in
  let has name =
    Walk.collect (fun o -> String.equal o.Op.op_name name) fn <> []
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (has n))
    [
      "cam.alloc_bank"; "cam.alloc_mat"; "cam.alloc_array";
      "cam.alloc_subarray"; "cam.write_value"; "cam.search"; "cam.read";
      "cam.merge_partial"; "cam.select_best"; "memref.alloc";
      "memref.subview";
    ]

let test_mapped_function_is_bufferized () =
  let c = compile () in
  let fn = Func_ir.find_func_exn c.cam_ir "forward" in
  List.iter
    (fun (a : Value.t) ->
      Alcotest.(check bool) "arg is memref" true
        (match a.ty with Types.Memref _ -> true | _ -> false))
    fn.fn_args;
  List.iter
    (fun t ->
      Alcotest.(check bool) "result is memref" true
        (match t with Types.Memref _ -> true | _ -> false))
    fn.fn_ret

let test_metric_mapping () =
  (* dot lowers to hamming search with flipped selection *)
  let c = compile () in
  let fn = Func_ir.find_func_exn c.cam_ir "forward" in
  let search =
    List.hd (Walk.collect (fun o -> String.equal o.Op.op_name "cam.search") fn)
  in
  Alcotest.(check string) "hamming metric" "hamming"
    (Attr.as_sym (Op.attr_exn search "metric"));
  let select =
    List.hd
      (Walk.collect (fun o -> String.equal o.Op.op_name "cam.select_best") fn)
  in
  (* kernel uses largest=true dot, so CAM selects the smallest distance *)
  Alcotest.(check bool) "selection flipped" false
    (Attr.as_bool (Op.attr_exn select "largest"))

let test_euclidean_requires_mcam () =
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let src = C4cam.Kernels.knn_euclidean ~q:2 ~dims:32 ~n:16 ~k:1 in
  (match C4cam.Driver.compile ~spec src with
  | _ -> Alcotest.fail "TCAM must reject euclidean"
  | exception C4cam.Driver.Compile_error msg ->
      Alcotest.(check bool) "helpful error" true
        (String.length msg > 10));
  let spec = { spec with cam_kind = Archspec.Spec.Mcam } in
  ignore (C4cam.Driver.compile ~spec src)

let test_allocation_counts_match_mapping () =
  (* Run the mapped module and compare simulator allocation stats with
     the mapping arithmetic, including a partially-filled bank. *)
  List.iter
    (fun (side, opt) ->
      let spec = Archspec.Spec.square side opt in
      let dims = 1024 in
      let data =
        Workloads.Hdc.synthetic ~dims ~n_classes:10 ~n_queries:3 ~bits:1 ()
      in
      let m = C4cam.Dse.hdc ~spec ~data () in
      let batches = Passes.Cim_partition.batches_for spec ~stored_rows:10 in
      let expected =
        Passes.Cam_map.mapping_of spec ~row_chunks:1
          ~col_chunks:(dims / side) ~batches
      in
      Alcotest.(check int)
        (Printf.sprintf "subarrays %dx%d %s" side side
           (Archspec.Spec.optimization_to_string opt))
        expected.slots m.subarrays;
      Alcotest.(check int) "banks" expected.banks m.banks)
    [ (16, Archspec.Spec.Base); (32, Archspec.Spec.Base);
      (32, Archspec.Spec.Density); (64, Archspec.Spec.Density) ]

let test_stage_texts_verify () =
  let c = compile ~side:32 () in
  List.iter
    (fun (stage, text) ->
      let m = Parser.parse_module text in
      match Verifier.verify_module ~strict:true m with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s stage does not verify: %s" stage
            (Verifier.error_to_string e))
    (C4cam.Driver.stage_texts c)

let () =
  Alcotest.run "cam_map"
    [
      ( "mapping",
        [
          Alcotest.test_case "arithmetic" `Quick test_mapping_arithmetic;
          Alcotest.test_case "max banks" `Quick test_mapping_respects_max_banks;
          Alcotest.test_case "allocation counts" `Quick
            test_allocation_counts_match_mapping;
        ] );
      ( "structure",
        [
          Alcotest.test_case "base loops parallel" `Quick
            test_base_loops_parallel;
          Alcotest.test_case "power serializes" `Quick
            test_power_serializes_subarray_loop;
          Alcotest.test_case "subarray loop detection" `Quick
            test_subarray_loop_detection;
          Alcotest.test_case "cam ops present" `Quick test_cam_ops_present;
          Alcotest.test_case "bufferized" `Quick
            test_mapped_function_is_bufferized;
          Alcotest.test_case "stage texts verify" `Quick
            test_stage_texts_verify;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "dot to hamming" `Quick test_metric_mapping;
          Alcotest.test_case "euclidean needs mcam" `Quick
            test_euclidean_requires_mcam;
        ] );
    ]
