test/test_hetero.ml: Alcotest Archspec Array C4cam Dialects Float Interp Ir Lazy List Passes QCheck QCheck_alcotest String Tutil Workloads
