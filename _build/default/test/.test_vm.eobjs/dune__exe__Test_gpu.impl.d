test/test_gpu.ml: Alcotest C4cam Float Gpu_model Printf Tutil Workloads
