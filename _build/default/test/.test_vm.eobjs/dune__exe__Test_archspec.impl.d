test/test_archspec.ml: Alcotest Archspec List QCheck QCheck_alcotest Spec
