test/test_subarray.ml: Alcotest Array Camsim Float Gen List Printf QCheck QCheck_alcotest Tutil Workloads
