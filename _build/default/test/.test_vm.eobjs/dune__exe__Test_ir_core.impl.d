test/test_ir_core.ml: Alcotest Attr Builder Func_ir Ir List Op String Tutil Types Value Walk
