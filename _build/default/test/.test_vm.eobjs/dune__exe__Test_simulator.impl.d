test/test_simulator.ml: Alcotest Array Camsim List Printf Simulator Stats String Tutil
