test/test_e2e.ml: Alcotest Archspec Array C4cam Camsim Float Interp Ir List Option Printf QCheck QCheck_alcotest Tutil Workloads
