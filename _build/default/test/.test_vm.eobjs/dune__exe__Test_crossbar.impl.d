test/test_crossbar.ml: Alcotest Archspec Array C4cam Ir Lazy List Printf String Tutil Workloads Xbar
