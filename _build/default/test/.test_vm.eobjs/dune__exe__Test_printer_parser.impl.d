test/test_printer_parser.ml: Alcotest Archspec Attr C4cam Float Func_ir Ir List Op Parser Printer Printf QCheck QCheck_alcotest String Tutil Types Value
