test/tutil.ml: Alcotest Archspec Array C4cam Dialects Float Format Frontend String
