test/test_applications.mli:
