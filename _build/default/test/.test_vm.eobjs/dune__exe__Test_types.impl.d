test/test_types.ml: Alcotest Attr Ir List Option Tutil Types
