test/test_interp.ml: Alcotest Array Builder Camsim Dialects Func_ir Interp Ir List Tutil Types Value
