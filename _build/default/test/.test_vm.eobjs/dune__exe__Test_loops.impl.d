test/test_loops.ml: Alcotest Array C4cam Frontend Func_ir Interp Ir List Op Pass Passes Printf String Tutil Types Value Verifier Walk Workloads
