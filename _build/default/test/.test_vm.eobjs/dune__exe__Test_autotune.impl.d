test/test_autotune.ml: Alcotest Archspec C4cam Camsim Lazy List Tutil Workloads
