test/test_passes_cim.mli:
