test/test_archspec.mli:
