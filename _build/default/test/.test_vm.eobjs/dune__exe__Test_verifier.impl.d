test/test_verifier.ml: Alcotest Dialects Func_ir Ir List Op Registry String Types Value Verifier
