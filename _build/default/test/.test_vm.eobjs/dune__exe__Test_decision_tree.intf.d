test/test_decision_tree.mli:
