test/test_energy.ml: Alcotest Camsim Float Gen QCheck QCheck_alcotest Tutil
