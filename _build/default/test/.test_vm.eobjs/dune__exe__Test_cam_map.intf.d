test/test_cam_map.mli:
