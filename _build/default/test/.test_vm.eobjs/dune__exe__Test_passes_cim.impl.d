test/test_passes_cim.ml: Alcotest Array Attr C4cam Frontend Func_ir Interp Ir List Op Parser Pass Passes Printer String Tutil Types Value Walk Workloads
