test/test_report.ml: Alcotest C4cam List String
