test/test_vm.ml: Alcotest Archspec Array C4cam Camsim Interp List String Tutil Vm Workloads
