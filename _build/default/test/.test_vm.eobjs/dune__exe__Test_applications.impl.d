test/test_applications.ml: Alcotest Archspec Array Distance Few_shot Genome List Printf Prng Tutil Workloads
