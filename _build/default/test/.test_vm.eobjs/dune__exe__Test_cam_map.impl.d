test/test_cam_map.ml: Alcotest Archspec Attr C4cam Func_ir Ir List Op Parser Pass Passes Printf String Tutil Types Value Verifier Walk Workloads
