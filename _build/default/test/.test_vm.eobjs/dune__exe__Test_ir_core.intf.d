test/test_ir_core.mli:
