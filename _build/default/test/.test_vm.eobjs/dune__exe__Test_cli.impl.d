test/test_cli.ml: Alcotest Archspec C4cam Ir List Tutil
