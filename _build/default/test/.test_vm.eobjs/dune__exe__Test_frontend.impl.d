test/test_frontend.ml: Alcotest Array C4cam Emit Frontend Ir List Tslexer Tsparser Tutil
