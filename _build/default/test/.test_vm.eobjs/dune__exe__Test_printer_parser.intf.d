test/test_printer_parser.mli:
