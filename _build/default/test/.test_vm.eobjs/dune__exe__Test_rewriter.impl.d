test/test_rewriter.ml: Alcotest Ir List Op Passes Rewriter Types Value
