test/test_partition.ml: Alcotest Archspec Array Attr Func_ir Interp Ir List Op Pass Passes Printf String Tutil Types Value Walk Workloads
