test/test_loops.mli:
