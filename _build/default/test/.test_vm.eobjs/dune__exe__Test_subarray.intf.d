test/test_subarray.mli:
