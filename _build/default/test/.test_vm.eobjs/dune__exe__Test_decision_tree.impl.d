test/test_decision_tree.ml: Alcotest Archspec Array Camsim Dataset Decision_tree Printf QCheck QCheck_alcotest Tutil Workloads
