test/test_workloads.ml: Alcotest Array Dataset Distance Float Gen Hdc Knn List Printf Prng QCheck QCheck_alcotest Tutil Workloads
