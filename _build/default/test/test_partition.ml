(* cim-partition: tiling arithmetic, Table I reproduction, expanded
   region structure, and software equivalence of the partitioned form. *)

open Ir

let partitioned ?expand_limit ~spec ?(q = 4) ?(dims = 64) ?(classes = 4) () =
  Tutil.hdc_torch ~q ~dims ~classes ()
  |> Pass.run Passes.Torch_to_cim.pass
  |> Pass.run Passes.Cim_fusion.pass
  |> Pass.run (Passes.Cim_partition.pass ?expand_limit spec)

let find_wrapper m =
  let fn = Func_ir.find_func_exn m "forward" in
  List.hd
    (Walk.collect
       (fun o ->
         String.equal o.Op.op_name "cim.partitioned_similarity")
       fn)

let attr_i op key = Attr.as_int (Op.attr_exn op key)

let test_tiling_attrs () =
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let p = find_wrapper (partitioned ~spec ~q:4 ~dims:64 ~classes:4 ()) in
  Alcotest.(check int) "q" 4 (attr_i p "q");
  Alcotest.(check int) "n" 4 (attr_i p "n");
  Alcotest.(check int) "d" 64 (attr_i p "d");
  Alcotest.(check int) "tile rows" 4 (attr_i p "rows");
  Alcotest.(check int) "col chunks" 4 (attr_i p "col_chunks");
  Alcotest.(check int) "row chunks" 1 (attr_i p "row_chunks");
  Alcotest.(check int) "no batching" 1 (attr_i p "batches")

let test_row_chunking () =
  (* stored rows (32) exceed the subarray rows (16): two row chunks. *)
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let p = find_wrapper (partitioned ~spec ~q:2 ~dims:32 ~classes:32 ()) in
  Alcotest.(check int) "row chunks" 2 (attr_i p "row_chunks");
  Alcotest.(check int) "tile rows" 16 (attr_i p "rows")

let test_density_batches () =
  let spec = Archspec.Spec.square 32 Archspec.Spec.Density in
  let p = find_wrapper (partitioned ~spec ~q:2 ~dims:128 ~classes:10 ()) in
  Alcotest.(check int) "three batches of 10 rows" 3 (attr_i p "batches")

let test_batches_for_table1 () =
  (* The cam-density row of Table I derives from these batch counts. *)
  List.iter
    (fun (side, expect) ->
      let spec = Archspec.Spec.square side Archspec.Spec.Density in
      Alcotest.(check int)
        (Printf.sprintf "batches at %dx%d" side side)
        expect
        (Passes.Cim_partition.batches_for spec ~stored_rows:10))
    [ (16, 1); (32, 3); (64, 6); (128, 12); (256, 25) ];
  (* base never batches *)
  let spec = Archspec.Spec.square 256 Archspec.Spec.Base in
  Alcotest.(check int) "base batches" 1
    (Passes.Cim_partition.batches_for spec ~stored_rows:10);
  (* no batching when rows fill the subarray *)
  let spec = Archspec.Spec.square 32 Archspec.Spec.Density in
  Alcotest.(check int) "full rows" 1
    (Passes.Cim_partition.batches_for spec ~stored_rows:32)

let test_divisibility_errors () =
  let spec = Archspec.Spec.square 32 Archspec.Spec.Base in
  (* dims 48 not divisible by 32 *)
  (match partitioned ~spec ~q:2 ~dims:48 ~classes:4 () with
  | _ -> Alcotest.fail "expected a pass error"
  | exception Pass.Pass_error (_, msg) ->
      Alcotest.(check bool) "mentions divisibility" true
        (String.length msg > 0));
  (* stored rows 40 > 32 and not divisible *)
  match partitioned ~spec ~q:2 ~dims:64 ~classes:40 () with
  | _ -> Alcotest.fail "expected a pass error"
  | exception Pass.Pass_error _ -> ()

let test_expanded_region_structure () =
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let p = find_wrapper (partitioned ~spec ~q:4 ~dims:64 ~classes:4 ()) in
  let names = List.map (fun (o : Op.t) -> o.op_name) (Op.body_ops p) in
  let count n = List.length (List.filter (String.equal n) names) in
  Alcotest.(check int) "4 partials (4 col chunks)" 4
    (count "cim.similarity_partial");
  Alcotest.(check int) "8 slices" 8 (count "cim.slice");
  (* 3 horizontal merges within the row chunk + 1 vertical *)
  Alcotest.(check int) "4 merges" 4 (count "cim.merge_partial");
  Alcotest.(check int) "one select" 1 (count "cim.select_best");
  Alcotest.(check int) "one zeros" 1 (count "cim.zeros")

let test_compact_region_above_limit () =
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let p =
    find_wrapper
      (partitioned ~expand_limit:2 ~spec ~q:4 ~dims:64 ~classes:4 ())
  in
  let names = List.map (fun (o : Op.t) -> o.op_name) (Op.body_ops p) in
  Alcotest.(check (list string)) "compact form"
    [ "cim.similarity"; "cim.yield" ]
    names

let run_software m ~queries ~stored =
  let fn = Func_ir.find_func_exn m "forward" in
  let args =
    List.map2
      (fun (v : Value.t) rows ->
        Interp.Rtval.tensor (Types.shape v.ty)
          (Array.concat (Array.to_list rows)))
      fn.fn_args [ queries; stored ]
  in
  (Interp.Machine.run m "forward" args).results

let test_partitioned_matches_torch () =
  (* The expanded partitioned form computes the same top-1 indices as
     the torch reference, for several subarray geometries. *)
  let synth =
    Workloads.Hdc.synthetic ~seed:3 ~dims:64 ~n_classes:6 ~n_queries:5
      ~bits:1 ()
  in
  let torch = Tutil.hdc_torch ~q:5 ~dims:64 ~classes:6 () in
  let torch_indices =
    match run_software torch ~queries:synth.queries ~stored:synth.stored with
    | [ _; i ] -> Interp.Rtval.to_int_rows i
    | _ -> Alcotest.fail "bad arity"
  in
  List.iter
    (fun side ->
      let spec = Archspec.Spec.square side Archspec.Spec.Base in
      let m = partitioned ~spec ~q:5 ~dims:64 ~classes:6 () in
      match run_software m ~queries:synth.queries ~stored:synth.stored with
      | [ _; i ] ->
          Alcotest.(check Tutil.int_rows_testable)
            (Printf.sprintf "indices at %dx%d" side side)
            torch_indices (Interp.Rtval.to_int_rows i)
      | _ -> Alcotest.fail "bad arity")
    [ 16; 32; 64 ]

let () =
  Alcotest.run "partition"
    [
      ( "tiling",
        [
          Alcotest.test_case "attrs" `Quick test_tiling_attrs;
          Alcotest.test_case "row chunking" `Quick test_row_chunking;
          Alcotest.test_case "density batches" `Quick test_density_batches;
          Alcotest.test_case "table1 batch counts" `Quick
            test_batches_for_table1;
          Alcotest.test_case "divisibility errors" `Quick
            test_divisibility_errors;
        ] );
      ( "region",
        [
          Alcotest.test_case "expanded structure" `Quick
            test_expanded_region_structure;
          Alcotest.test_case "compact above limit" `Quick
            test_compact_region_above_limit;
        ] );
      ( "software equivalence",
        [
          Alcotest.test_case "matches torch" `Quick
            test_partitioned_matches_torch;
        ] );
    ]
