(* Application workloads on the device API: approximate genome matching
   (EDAM-style) and few-shot episodic memory. *)

open Workloads

(* ---- genome ------------------------------------------------------------ *)

let test_sequence_round_trip () =
  let s = Genome.of_string "ACGTAC" in
  Alcotest.(check string) "round trip" "ACGTAC" (Genome.to_string s);
  Tutil.check_raises_invalid "bad base" (fun () -> Genome.of_string "ACGX")

let test_encode_one_hot () =
  let e = Genome.encode (Genome.of_string "AG") in
  Alcotest.(check (array (float 0.))) "one-hot"
    [| 1.; 0.; 0.; 0.; 0.; 0.; 1.; 0. |]
    e

let test_kmers () =
  let s = Genome.of_string "ACGTA" in
  let ws = Genome.kmers s ~k:3 in
  Alcotest.(check int) "count" 3 (Array.length ws);
  Alcotest.(check string) "first" "ACG" (Genome.to_string ws.(0));
  Alcotest.(check string) "last" "GTA" (Genome.to_string ws.(2));
  Tutil.check_raises_invalid "k too large" (fun () ->
      ignore (Genome.kmers s ~k:9))

let test_mismatches () =
  let a = Genome.of_string "ACGT" and b = Genome.of_string "ACCA" in
  Alcotest.(check int) "two" 2 (Genome.mismatches a b);
  Alcotest.(check int) "zero" 0 (Genome.mismatches a a)

let test_mutate_rate () =
  let s = Genome.random_sequence ~seed:3 400 in
  let m = Genome.mutate ~seed:4 s ~rate:0.25 in
  let d = Genome.mismatches s m in
  Alcotest.(check bool)
    (Printf.sprintf "%d mutations is near 100" d)
    true
    (d > 60 && d < 140);
  Alcotest.(check int) "rate 0 changes nothing" 0
    (Genome.mismatches s (Genome.mutate s ~rate:0.))

let test_cam_scan_equals_software () =
  let reference = Genome.random_sequence ~seed:9 300 in
  let index = Genome.build_index ~reference ~k:16 () in
  (* patterns cut from the reference and mutated *)
  List.iter
    (fun (pos, rate, budget) ->
      let pattern =
        Genome.mutate ~seed:(pos * 7) (Array.sub reference pos 16) ~rate
      in
      let cam = Genome.scan_cam index ~pattern ~max_mismatches:budget in
      let sw =
        Genome.scan_software ~reference ~pattern ~max_mismatches:budget
      in
      Alcotest.(check (list int))
        (Printf.sprintf "pos %d rate %.2f budget %d" pos rate budget)
        sw cam;
      if rate = 0. then
        Alcotest.(check bool) "origin found" true (List.mem pos cam))
    [ (0, 0., 0); (42, 0., 1); (100, 0.1, 3); (200, 0.2, 5); (283, 0., 0) ]

let test_index_capacity_errors () =
  let reference = Genome.random_sequence ~seed:1 100 in
  Tutil.check_raises_invalid "does not fit" (fun () ->
      Genome.build_index
        ~spec:{ Archspec.Spec.default with rows = 8; cols = 64 }
        ~reference ~k:16 ());
  let index = Genome.build_index ~reference ~k:16 () in
  Tutil.check_raises_invalid "wrong pattern length" (fun () ->
      ignore
        (Genome.scan_cam index
           ~pattern:(Genome.random_sequence ~seed:2 8)
           ~max_mismatches:0))

(* ---- few-shot ------------------------------------------------------------ *)

let embedder = Few_shot.embedder ~in_dim:32 ~out_dim:128 ()

let test_embed_binary_and_deterministic () =
  let rng = Prng.create 3 in
  let x = Array.init 32 (fun _ -> Prng.gaussian rng) in
  let k1 = Few_shot.embed embedder x in
  let k2 = Few_shot.embed embedder x in
  Alcotest.(check bool) "deterministic" true (k1 = k2);
  Array.iter
    (fun v -> Alcotest.(check bool) "binary" true (v = 0. || v = 1.))
    k1

let test_embedding_preserves_similarity () =
  let rng = Prng.create 5 in
  let x = Array.init 32 (fun _ -> Prng.gaussian rng) in
  let near = Array.map (fun v -> v +. (0.05 *. Prng.gaussian rng)) x in
  let far = Array.init 32 (fun _ -> Prng.gaussian rng) in
  let e = Few_shot.embed embedder in
  Alcotest.(check bool) "locality-sensitive" true
    (Distance.hamming (e x) (e near) < Distance.hamming (e x) (e far))

let test_episode_shapes () =
  let ep =
    Few_shot.make_episode ~n_way:5 ~k_shot:3 ~n_queries:7 ~dim:32 ()
  in
  Alcotest.(check int) "support" 15 (Array.length ep.support);
  Alcotest.(check int) "queries" 7 (Array.length ep.queries);
  Array.iter
    (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 5))
    ep.support_labels

let test_cam_equals_software () =
  List.iter
    (fun seed ->
      let ep =
        Few_shot.make_episode ~seed ~n_way:5 ~k_shot:5 ~n_queries:12
          ~dim:32 ()
      in
      let cam, _ = Few_shot.classify_cam embedder ep ~k:3 in
      let sw = Few_shot.classify_software embedder ep ~k:3 in
      Alcotest.(check (array int))
        (Printf.sprintf "episode %d" seed)
        sw cam)
    [ 1; 2; 3; 4 ]

let test_few_shot_accuracy () =
  let total = ref 0. in
  for seed = 1 to 8 do
    let ep =
      Few_shot.make_episode ~seed ~noise:0.2 ~n_way:5 ~k_shot:5
        ~n_queries:20 ~dim:32 ()
    in
    let cam, _ = Few_shot.classify_cam embedder ep ~k:3 in
    total := !total +. Few_shot.episode_accuracy cam ep.query_labels
  done;
  let mean = !total /. 8. in
  Alcotest.(check bool)
    (Printf.sprintf "mean accuracy %.2f > 0.85" mean)
    true (mean > 0.85)

let test_support_must_fit () =
  let ep = Few_shot.make_episode ~n_way:5 ~k_shot:5 ~n_queries:2 ~dim:32 () in
  Tutil.check_raises_invalid "tiny subarray rejected" (fun () ->
      ignore
        (Few_shot.classify_cam
           ~spec:{ Archspec.Spec.default with rows = 4; cols = 128 }
           embedder ep ~k:1))

let () =
  Alcotest.run "applications"
    [
      ( "genome",
        [
          Alcotest.test_case "round trip" `Quick test_sequence_round_trip;
          Alcotest.test_case "one-hot" `Quick test_encode_one_hot;
          Alcotest.test_case "kmers" `Quick test_kmers;
          Alcotest.test_case "mismatches" `Quick test_mismatches;
          Alcotest.test_case "mutate rate" `Quick test_mutate_rate;
          Alcotest.test_case "cam = software scan" `Quick
            test_cam_scan_equals_software;
          Alcotest.test_case "capacity errors" `Quick
            test_index_capacity_errors;
        ] );
      ( "few-shot",
        [
          Alcotest.test_case "binary embedding" `Quick
            test_embed_binary_and_deterministic;
          Alcotest.test_case "locality" `Quick
            test_embedding_preserves_similarity;
          Alcotest.test_case "episode shapes" `Quick test_episode_shapes;
          Alcotest.test_case "cam = software" `Quick test_cam_equals_software;
          Alcotest.test_case "accuracy" `Quick test_few_shot_accuracy;
          Alcotest.test_case "capacity" `Quick test_support_must_fit;
        ] );
    ]
