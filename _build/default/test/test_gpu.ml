(* GPU analytical baseline. *)

let gpu = Gpu_model.quadro_rtx6000

let test_kernel_positive () =
  let c = Gpu_model.matmul gpu ~m:16 ~k:64 ~n:10 ~elem_bytes:4 in
  Alcotest.(check bool) "positive" true (c.latency > 0. && c.energy > 0.)

let test_launch_overhead_floor () =
  let c = Gpu_model.matmul gpu ~m:1 ~k:1 ~n:1 ~elem_bytes:4 in
  Alcotest.(check bool) "tiny kernel pays the launch overhead" true
    (c.latency >= gpu.launch_overhead_s)

let test_monotone_in_size () =
  let t m = (Gpu_model.matmul gpu ~m ~k:8192 ~n:10 ~elem_bytes:4).latency in
  Alcotest.(check bool) "latency grows with batch" true
    (t 128 < t 1024 && t 1024 < t 8192)

let test_energy_proportional_to_time () =
  let c = Gpu_model.matmul gpu ~m:1024 ~k:8192 ~n:10 ~elem_bytes:4 in
  Tutil.check_float ~eps:1e-9 "E = P x t x util"
    (c.latency *. gpu.board_power_w *. gpu.utilization)
    c.energy

let test_hdc_inference_composition () =
  let mm = Gpu_model.matmul gpu ~m:256 ~k:8192 ~n:10 ~elem_bytes:4 in
  let tk = Gpu_model.topk gpu ~rows:256 ~cols:10 ~k:1 ~elem_bytes:4 in
  let e2e = Gpu_model.hdc_inference gpu ~queries:256 ~dims:8192 ~classes:10 in
  Tutil.check_float ~eps:1e-9 "sum of kernels" (mm.latency +. tk.latency)
    e2e.latency

let test_knn_inference () =
  let c = Gpu_model.knn_inference gpu ~queries:16 ~dims:1024 ~stored:5120 ~k:7 in
  Alcotest.(check bool) "knn positive" true (c.latency > 0.);
  let bigger =
    Gpu_model.knn_inference gpu ~queries:16 ~dims:1024 ~stored:10240 ~k:7
  in
  Alcotest.(check bool) "more stored, slower" true
    (bigger.latency > c.latency)

let test_paper_regime () =
  (* The end-to-end HDC comparison should land near the paper's 48x. *)
  let data =
    Workloads.Hdc.synthetic ~seed:11 ~dims:8192 ~n_classes:10 ~n_queries:64
      ~bits:1 ()
  in
  let r =
    C4cam.Dse.gpu_comparison_hdc ~spec:Tutil.spec32 ~data ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.1fx within [20x, 90x]" r.speedup)
    true
    (r.speedup > 20. && r.speedup < 90.);
  Alcotest.(check bool)
    (Printf.sprintf "energy improvement %.1fx tracks speedup" r.energy_improvement)
    true
    (Float.abs (r.energy_improvement -. r.speedup) /. r.speedup < 0.25);
  Alcotest.(check bool) "device energy is a tiny fraction of system" true
    (r.cam_energy < 0.05 *. r.cam_system_energy)

let () =
  Alcotest.run "gpu"
    [
      ( "model",
        [
          Alcotest.test_case "kernel positive" `Quick test_kernel_positive;
          Alcotest.test_case "launch floor" `Quick test_launch_overhead_floor;
          Alcotest.test_case "monotone" `Quick test_monotone_in_size;
          Alcotest.test_case "energy ~ time" `Quick
            test_energy_proportional_to_time;
          Alcotest.test_case "hdc composition" `Quick
            test_hdc_inference_composition;
          Alcotest.test_case "knn" `Quick test_knn_inference;
          Alcotest.test_case "paper regime" `Quick test_paper_regime;
        ] );
    ]
