(* Smoke tests of the pieces behind the CLI that are not covered
   elsewhere: kernel templates and traced compilation. *)

let test_kernel_templates_compile () =
  List.iter
    (fun (name, src, spec) ->
      match C4cam.Driver.compile ~spec src with
      | _ -> ()
      | exception C4cam.Driver.Compile_error e ->
          Alcotest.failf "%s: %s" name e)
    [
      ( "hdc",
        C4cam.Kernels.hdc_dot ~q:2 ~dims:64 ~classes:4 ~k:1,
        Tutil.spec32 );
      ("hdc paper", C4cam.Kernels.hdc_dot_paper, Tutil.spec32);
      ( "knn",
        C4cam.Kernels.knn_euclidean ~q:2 ~dims:32 ~n:16 ~k:2,
        { Tutil.spec32 with cam_kind = Archspec.Spec.Mcam } );
      ( "cosine",
        C4cam.Kernels.cosine_scores ~q:2 ~dims:32 ~n:8,
        Tutil.spec32 );
    ]

let test_compile_traced_entries () =
  let _, entries =
    C4cam.Driver.compile_traced ~spec:Tutil.spec32
      (C4cam.Kernels.hdc_dot ~q:2 ~dims:64 ~classes:4 ~k:1)
  in
  let names = List.map fst entries in
  Alcotest.(check bool) "starts at the frontend" true
    (List.hd names = "frontend");
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [ "torch-to-cim"; "cim-fuse-ops"; "cim-partition"; "cam-map" ];
  (* every snapshot parses back *)
  List.iter
    (fun (name, text) ->
      match Ir.Parser.parse_module text with
      | _ -> ()
      | exception Ir.Parser.Parse_error e ->
          Alcotest.failf "%s snapshot does not parse: %s" name e)
    entries

let test_traced_equals_untraced () =
  (* Value ids are globally fresh, so compare structure, not text. *)
  let src = C4cam.Kernels.hdc_dot ~q:3 ~dims:64 ~classes:4 ~k:1 in
  let a = C4cam.Driver.compile ~spec:Tutil.spec32 src in
  let b, _ = C4cam.Driver.compile_traced ~spec:Tutil.spec32 src in
  let shape (m : Ir.Func_ir.modul) =
    let names = ref [] in
    Ir.Walk.iter_module (fun op -> names := op.Ir.Op.op_name :: !names) m;
    List.rev !names
  in
  Alcotest.(check (list string)) "same cam op structure" (shape a.cam_ir)
    (shape b.cam_ir)

let test_stage_texts_complete () =
  let c =
    C4cam.Driver.compile ~spec:Tutil.spec32
      (C4cam.Kernels.hdc_dot ~q:2 ~dims:64 ~classes:4 ~k:1)
  in
  Alcotest.(check (list string)) "three stages"
    [ "torch"; "cim"; "cam" ]
    (List.map fst (C4cam.Driver.stage_texts c))

let () =
  Alcotest.run "cli"
    [
      ( "driver surface",
        [
          Alcotest.test_case "kernel templates" `Quick
            test_kernel_templates_compile;
          Alcotest.test_case "traced entries" `Quick
            test_compile_traced_entries;
          Alcotest.test_case "traced = untraced" `Quick
            test_traced_equals_untraced;
          Alcotest.test_case "stage texts" `Quick test_stage_texts_complete;
        ] );
    ]
