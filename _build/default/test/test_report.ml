(* Report formatting. *)

let test_table_alignment () =
  let t =
    C4cam.Report.table ~headers:[ "a"; "long header" ]
      [ [ "xx"; "1" ]; [ "y"; "22" ] ]
  in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* all non-empty lines have equal width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_si_time () =
  Alcotest.(check string) "ps" "860 ps" (C4cam.Report.si_time 860e-12);
  Alcotest.(check string) "ns" "7.50 ns" (C4cam.Report.si_time 7.5e-9);
  Alcotest.(check string) "us" "2.37 us" (C4cam.Report.si_time 2.37e-6);
  Alcotest.(check string) "ms" "15.0 ms" (C4cam.Report.si_time 15.0e-3);
  Alcotest.(check string) "zero" "0 s" (C4cam.Report.si_time 0.)

let test_si_energy () =
  Alcotest.(check string) "fJ" "220 fJ" (C4cam.Report.si_energy 220e-15);
  Alcotest.(check string) "nJ" "1.50 nJ" (C4cam.Report.si_energy 1.5e-9);
  Alcotest.(check string) "J" "2.00 J" (C4cam.Report.si_energy 2.)

let test_si_power () =
  Alcotest.(check string) "mW" "64.0 mW" (C4cam.Report.si_power 64e-3);
  Alcotest.(check string) "W" "44.1 W" (C4cam.Report.si_power 44.14)

let test_ratio_and_dev () =
  Alcotest.(check string) "ratio" "2.00x" (C4cam.Report.ratio 4. 2.);
  Alcotest.(check string) "pct" "10.0%" (C4cam.Report.pct_dev 1.1 1.0)

let () =
  Alcotest.run "report"
    [
      ( "formatting",
        [
          Alcotest.test_case "table" `Quick test_table_alignment;
          Alcotest.test_case "time" `Quick test_si_time;
          Alcotest.test_case "energy" `Quick test_si_energy;
          Alcotest.test_case "power" `Quick test_si_power;
          Alcotest.test_case "ratio" `Quick test_ratio_and_dev;
        ] );
    ]
