(* Heterogeneous multi-kernel compilation and bank-level task
   parallelism, plus a semantics-preservation property for the
   canonicalization passes. *)

let two_kernel_source =
  (* a small HDC classifier and a small KNN ranker in one module *)
  C4cam.Kernels.hdc_dot ~q:6 ~dims:128 ~classes:5 ~k:1
  ^ C4cam.Kernels.knn_euclidean ~q:3 ~dims:64 ~n:32 ~k:4
  |> fun s ->
  (* give the kernels distinct names *)
  let first = ref true in
  String.split_on_char '\n' s
  |> List.map (fun l ->
         if String.length l >= 11 && String.sub l 0 11 = "def forward" then
           if !first then (
             first := false;
             "def classify" ^ String.sub l 11 (String.length l - 11))
           else "def rank" ^ String.sub l 11 (String.length l - 11)
         else l)
  |> String.concat "\n"

let specs =
  [
    ("classify", Archspec.Spec.square 32 Archspec.Spec.Base);
    ( "rank",
      { (Archspec.Spec.square 16 Archspec.Spec.Base) with
        cam_kind = Archspec.Spec.Mcam } );
  ]

let compiled = lazy (C4cam.Hetero.compile_module ~specs two_kernel_source)

let test_compile_module () =
  match Lazy.force compiled with
  | [ a; b ] ->
      Alcotest.(check string) "first kernel" "classify" a.fn_name;
      Alcotest.(check string) "second kernel" "rank" b.fn_name;
      Alcotest.(check int) "classify dims" 128 a.info.d;
      Alcotest.(check int) "rank stored" 32 b.info.n;
      Alcotest.(check bool) "per-kernel specs honoured" true
        (a.spec.rows = 32 && b.spec.rows = 16
        && b.spec.cam_kind = Archspec.Spec.Mcam)
  | l -> Alcotest.failf "expected two kernels, got %d" (List.length l)

let test_missing_spec_rejected () =
  Alcotest.(check bool) "missing spec" true
    (match
       C4cam.Hetero.compile_module
         ~specs:[ ("classify", Archspec.Spec.square 32 Archspec.Spec.Base) ]
         two_kernel_source
     with
    | _ -> false
    | exception C4cam.Driver.Compile_error _ -> true)

let test_run_concurrent () =
  let a, b =
    match Lazy.force compiled with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two kernels"
  in
  let hdc =
    Workloads.Hdc.synthetic ~seed:71 ~dims:128 ~n_classes:5 ~n_queries:6
      ~bits:1 ()
  in
  let ds =
    Workloads.Dataset.pneumonia_like ~seed:72 ~n_features:64
      ~samples_per_class:16 ()
  in
  let tasks =
    [
      { C4cam.Hetero.t_compiled = a; t_queries = hdc.queries;
        t_stored = hdc.stored };
      { C4cam.Hetero.t_compiled = b;
        t_queries = Array.sub ds.features 0 3;
        t_stored = ds.features };
    ]
  in
  let o = C4cam.Hetero.run_concurrent tasks in
  Alcotest.(check int) "two results" 2 (List.length o.per_task);
  let l1 = (List.nth o.per_task 0).latency in
  let l2 = (List.nth o.per_task 1).latency in
  Tutil.check_float "latency is the max" (Float.max l1 l2) o.latency;
  Tutil.check_float "sequential is the sum" (l1 +. l2)
    o.sequential_latency;
  Tutil.check_float "energy adds"
    ((List.nth o.per_task 0).energy +. (List.nth o.per_task 1).energy)
    o.energy;
  Alcotest.(check bool) "parallelism helps" true
    (o.latency < o.sequential_latency);
  (* each kernel still produces its own correct results *)
  let hdc_result = List.nth o.per_task 0 in
  let correct = ref 0 in
  Array.iteri
    (fun i (row : int array) ->
      if row.(0) = hdc.query_labels.(i) then incr correct)
    hdc_result.indices;
  Alcotest.(check int) "hdc task classifies" 6 !correct

(* ---- canonicalization preserves semantics (property) ------------------- *)

(* Random straight-line arith program; run it through the interpreter
   before and after fold+cse+dce and compare the returned index. *)
let gen_arith_program =
  QCheck.Gen.(
    let* n_ops = int_range 1 12 in
    let* ops =
      list_repeat n_ops
        (triple (int_range 0 4) (int_range 0 1000) (int_range 0 1000))
    in
    return ops)

let build_arith_program ops =
  let b = Ir.Builder.create () in
  let values = ref [] in
  let const v =
    let r = Dialects.Arith.const_index b v in
    values := r :: !values;
    r
  in
  ignore (const 7);
  List.iter
    (fun (kind, a, bsel) ->
      let pick sel =
        List.nth !values (sel mod List.length !values)
      in
      let x = pick a and y = pick bsel in
      let r =
        match kind with
        | 0 -> Dialects.Arith.addi b x y
        | 1 -> Dialects.Arith.subi b x y
        | 2 -> Dialects.Arith.muli b x y
        | 3 -> const (a mod 100)
        | _ -> Dialects.Arith.addi b (const (bsel mod 50)) x
      in
      values := r :: !values)
    ops;
  Ir.Builder.op0 b ~operands:[ List.hd !values ] "func.return";
  Ir.Func_ir.modul
    [ Ir.Func_ir.func "f" ~args:[] ~ret:[ Ir.Types.Index ]
        (Ir.Builder.finish b) ]

let run_index m =
  match (Interp.Machine.run m "f" []).results with
  | [ Interp.Rtval.Index i ] -> i
  | _ -> Alcotest.fail "expected an index result"

let prop_canonicalize_preserves =
  QCheck.Test.make ~count:200
    ~name:"fold+cse+dce preserve program results"
    (QCheck.make gen_arith_program)
    (fun ops ->
      let m = build_arith_program ops in
      let before = run_index m in
      let m' =
        Ir.Pass.run ~verify:true Passes.Canonicalize.pass
          (C4cam.Driver.clone_module m)
      in
      run_index m' = before)

let () =
  Alcotest.run "hetero"
    [
      ( "heterogeneous",
        [
          Alcotest.test_case "compile module" `Quick test_compile_module;
          Alcotest.test_case "missing spec" `Quick test_missing_spec_rejected;
          Alcotest.test_case "run concurrent" `Quick test_run_concurrent;
        ] );
      ( "canonicalize semantics",
        [ QCheck_alcotest.to_alcotest prop_canonicalize_preserves ] );
    ]
