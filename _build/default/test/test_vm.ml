(* The flat runtime ISA: lowering, execution, and exact equivalence with
   the structured-IR interpreter. *)

let compile ?(opt = Archspec.Spec.Base) ?(side = 16) ?(q = 6) ?(dims = 128)
    ?(classes = 5) () =
  let spec = Archspec.Spec.square side opt in
  C4cam.Driver.compile ~spec
    (C4cam.Kernels.hdc_dot ~q ~dims ~classes ~k:1)

let data ?(q = 6) ?(dims = 128) ?(classes = 5) () =
  Workloads.Hdc.synthetic ~seed:41 ~dims ~n_classes:classes ~n_queries:q
    ~bits:1 ()

let test_lowering_shape () =
  let c = compile () in
  let p = C4cam.Driver.to_vm c in
  Alcotest.(check bool) "has instructions" true (Array.length p.instrs > 30);
  Alcotest.(check string) "entry name" "forward" p.entry;
  Alcotest.(check int) "two buffer args" 2 (List.length p.arg_regs);
  (* structured loops became frames + branches *)
  let count f = Array.to_list p.instrs |> List.filter f |> List.length in
  let enters =
    count (function Vm.Isa.Frame_enter _ -> true | _ -> false)
  in
  let exits = count (function Vm.Isa.Frame_exit -> true | _ -> false) in
  Alcotest.(check int) "balanced frames" enters exits;
  Alcotest.(check int) "five loops (4 levels + batch)" 5 enters;
  Alcotest.(check bool) "has branches" true
    (count (function Vm.Isa.Branch _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "ends in ret" true
    (Array.exists (function Vm.Isa.Ret _ -> true | _ -> false) p.instrs)

let test_listing () =
  let c = compile () in
  let text = Vm.Isa.to_string (C4cam.Driver.to_vm c) in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("listing mentions " ^ needle) true
        (contains text needle))
    [ "cam.search"; "cam.alloc_bank"; "frame.enter par"; "iter.begin";
      "ret"; "subview" ]

let test_vm_equals_interpreter () =
  List.iter
    (fun opt ->
      let c = compile ~opt () in
      let d = data () in
      let a = C4cam.Driver.run_cam c ~queries:d.queries ~stored:d.stored in
      let b = C4cam.Driver.run_vm c ~queries:d.queries ~stored:d.stored in
      let name = Archspec.Spec.optimization_to_string opt in
      Alcotest.(check Tutil.int_rows_testable) (name ^ ": same indices")
        a.indices b.indices;
      Alcotest.(check Tutil.rows_testable) (name ^ ": same values")
        a.values b.values;
      Tutil.check_float ~eps:1e-12 (name ^ ": same latency") a.latency
        b.latency;
      Tutil.check_float ~eps:1e-12 (name ^ ": same energy") a.energy
        b.energy)
    Archspec.Spec.[ Base; Power; Density; Power_density ]

let test_vm_knn_equivalence () =
  let spec =
    { (Archspec.Spec.square 16 Archspec.Spec.Base) with
      cam_kind = Archspec.Spec.Mcam }
  in
  let c =
    C4cam.Driver.compile ~spec
      (C4cam.Kernels.knn_euclidean ~q:3 ~dims:32 ~n:32 ~k:4)
  in
  let ds =
    Workloads.Dataset.pneumonia_like ~seed:2 ~n_features:32
      ~samples_per_class:16 ()
  in
  let queries = Array.sub ds.features 0 3 in
  let a = C4cam.Driver.run_cam c ~queries ~stored:ds.features in
  let b = C4cam.Driver.run_vm c ~queries ~stored:ds.features in
  Alcotest.(check Tutil.int_rows_testable) "knn indices" a.indices b.indices;
  Tutil.check_float ~eps:1e-12 "knn latency" a.latency b.latency

(* hand-built programs exercising the executor's corner cases *)

let run_raw ?sim instrs ~n_regs ~args ~arg_regs =
  Vm.Exec.run ?sim
    { Vm.Isa.instrs = Array.of_list instrs; n_regs; arg_regs; entry = "t" }
    args

let test_exec_arith_and_branches () =
  (* computes 10 / 3 and 10 mod 3, branching on equality *)
  let open Vm.Isa in
  let o =
    run_raw ~n_regs:6 ~args:[] ~arg_regs:[]
      [
        Const (0, 10);
        Const (1, 3);
        Binop (Div, 2, 0, 1);
        Binop (Rem, 3, 0, 1);
        Cmp (Eq, 4, 2, 1);  (* 3 = 3 *)
        Branch (4, 0, 1);
        Label 1;
        Const (5, 999);  (* wrong branch *)
        Ret [ 5 ];
        Label 0;
        Ret [ 2; 3 ];
      ]
  in
  match o.results with
  | [ Interp.Rtval.Index 3; Interp.Rtval.Index 1 ] -> ()
  | _ -> Alcotest.fail "wrong arithmetic or branch taken"

let test_exec_frame_semantics () =
  (* Two iterations of 1-instruction cost in a frame: parallel frames
     max-combine; use a real search as the cost source. *)
  let open Vm.Isa in
  let spec = Archspec.Spec.square 16 Archspec.Spec.Base in
  let prog mode =
    let sim = Camsim.Simulator.create spec in
    let q = Interp.Rtval.Buffer (Interp.Rtval.fresh_buffer [ 1; 16 ]) in
    let params =
      { s_kind = `Best; s_metric = `Hamming; s_rows = 4;
        s_batch_extra = false; s_threshold = 0. }
    in
    let o =
      run_raw ~sim ~n_regs:10 ~args:[ q ] ~arg_regs:[ 0 ]
        [
          Cam_alloc_bank (1, 16, 16);
          Cam_alloc_mat (2, 1);
          Cam_alloc_array (3, 2);
          Cam_alloc_subarray (4, 3);
          Const (5, 0);
          Frame_enter mode;
          Iter_begin;
          Cam_search (4, 0, 5, params);
          Iter_end;
          Iter_begin;
          Cam_search (4, 0, 5, params);
          Iter_end;
          Frame_exit;
          Ret [];
        ]
    in
    o.latency
  in
  let seq = prog Seq and par = prog Par in
  Tutil.check_float ~eps:1e-15 "sequential doubles" (2. *. par) seq

let test_exec_errors () =
  let open Vm.Isa in
  let expect what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Exec_error" what
    | exception Vm.Exec.Exec_error _ -> ()
  in
  expect "missing simulator" (fun () ->
      run_raw ~n_regs:2 ~args:[] ~arg_regs:[]
        [ Cam_alloc_bank (0, 4, 4); Ret [] ]);
  expect "undefined label" (fun () ->
      run_raw ~n_regs:1 ~args:[] ~arg_regs:[] [ Jump 42 ]);
  expect "falls off the end" (fun () ->
      run_raw ~n_regs:1 ~args:[] ~arg_regs:[] [ Const (0, 1) ]);
  expect "fuel exhausted" (fun () ->
      Vm.Exec.run ~fuel:100
        { instrs = [| Label 0; Jump 0 |]; n_regs = 0; arg_regs = [];
          entry = "t" }
        []);
  expect "type confusion" (fun () ->
      run_raw ~n_regs:2 ~args:[] ~arg_regs:[]
        [ Alloc_buf (0, [ 2; 2 ]); Binop (Add, 1, 0, 0); Ret [] ]);
  expect "division by zero" (fun () ->
      run_raw ~n_regs:3 ~args:[] ~arg_regs:[]
        [ Const (0, 1); Const (1, 0); Binop (Div, 2, 0, 1); Ret [] ]);
  expect "arity mismatch" (fun () ->
      run_raw ~n_regs:1 ~args:[] ~arg_regs:[ 0 ] [ Ret [] ])

let test_lower_rejects_high_level () =
  let m = Tutil.hdc_torch () in
  match Vm.Lower.modul m "forward" with
  | _ -> Alcotest.fail "torch-level module must not lower"
  | exception Vm.Lower.Lower_error _ -> ()

let () =
  Alcotest.run "vm"
    [
      ( "lowering",
        [
          Alcotest.test_case "program shape" `Quick test_lowering_shape;
          Alcotest.test_case "listing" `Quick test_listing;
          Alcotest.test_case "rejects high-level IR" `Quick
            test_lower_rejects_high_level;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hdc, all configs" `Quick
            test_vm_equals_interpreter;
          Alcotest.test_case "knn" `Quick test_vm_knn_equivalence;
        ] );
      ( "executor",
        [
          Alcotest.test_case "arith and branches" `Quick
            test_exec_arith_and_branches;
          Alcotest.test_case "frame semantics" `Quick
            test_exec_frame_semantics;
          Alcotest.test_case "errors" `Quick test_exec_errors;
        ] );
    ]
