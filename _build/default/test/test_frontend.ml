(* TorchScript frontend: lexer, parser, emission and shape inference. *)

open Frontend

let emit src = Emit.compile_string src

let expect_parse_error what src =
  match Tsparser.parse_program src with
  | _ -> Alcotest.failf "%s: expected a parse error" what
  | exception Tsparser.Parse_error _ -> ()

let expect_emit_error what src =
  match emit src with
  | _ -> Alcotest.failf "%s: expected an emit error" what
  | exception Emit.Emit_error _ -> ()

let op_names m =
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  List.map (fun (o : Ir.Op.t) -> o.op_name) fn.fn_body.body

let test_lexer_tokens () =
  let toks = Tslexer.tokenize "def f(x: Tensor[2, 3]) -> Tensor:\n    return x\n" in
  Alcotest.(check bool) "starts with def" true (toks.(0) = Tslexer.DEF);
  Alcotest.(check bool) "ends with eof" true
    (toks.(Array.length toks - 1) = Tslexer.EOF)

let test_lexer_comments_and_numbers () =
  let toks = Tslexer.tokenize "x = 1 # comment\ny = 2.5e1\n" in
  let has t = Array.exists (fun x -> x = t) toks in
  Alcotest.(check bool) "int" true (has (Tslexer.INT 1));
  Alcotest.(check bool) "float" true (has (Tslexer.FLOAT 25.));
  Alcotest.(check bool) "comment dropped" false
    (Array.exists (function Tslexer.NAME "comment" -> true | _ -> false) toks)

let test_hdc_kernel_emission () =
  let m = emit C4cam.Kernels.hdc_dot_paper in
  Alcotest.(check (list string)) "op sequence"
    [ "torch.transpose"; "torch.matmul"; "torch.topk"; "func.return" ]
    (op_names m);
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  Alcotest.(check int) "two params" 2 (List.length fn.fn_args);
  (* Figure 4a returns indices only. *)
  Alcotest.(check (list string)) "returns one i32 tensor"
    [ "tensor<10x1xi32>" ]
    (List.map Ir.Types.to_string fn.fn_ret)

let test_shapes_inferred () =
  let m = emit (Tutil.hdc_source ~q:7 ~dims:96 ~classes:5 ~k:2 ()) in
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  let find name =
    List.find (fun (o : Ir.Op.t) -> o.op_name = name) fn.fn_body.body
  in
  Alcotest.(check string) "transpose shape" "tensor<96x5xf32>"
    (Ir.Types.to_string (Ir.Op.result (find "torch.transpose")).ty);
  Alcotest.(check string) "matmul shape" "tensor<7x5xf32>"
    (Ir.Types.to_string (Ir.Op.result (find "torch.matmul")).ty);
  Alcotest.(check string) "topk values shape" "tensor<7x2xf32>"
    (Ir.Types.to_string (Ir.Op.result_n (find "torch.topk") 0).ty)

let test_knn_kernel_broadcast () =
  let m = emit (C4cam.Kernels.knn_euclidean ~q:3 ~dims:32 ~n:8 ~k:2) in
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  let find name =
    List.find (fun (o : Ir.Op.t) -> o.op_name = name) fn.fn_body.body
  in
  Alcotest.(check string) "broadcast sub shape" "tensor<3x8x32xf32>"
    (Ir.Types.to_string (Ir.Op.result (find "torch.sub")).ty);
  Alcotest.(check string) "norm shape" "tensor<3x8xf32>"
    (Ir.Types.to_string (Ir.Op.result (find "torch.norm")).ty)

let test_cosine_kernel () =
  let m = emit (C4cam.Kernels.cosine_scores ~q:3 ~dims:32 ~n:8) in
  Alcotest.(check (list string)) "cosine op sequence"
    [ "torch.norm"; "torch.norm"; "torch.transpose"; "torch.matmul";
      "torch.div"; "func.return" ]
    (op_names m);
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  let div = List.find (fun (o : Ir.Op.t) -> o.op_name = "torch.div") fn.fn_body.body in
  Alcotest.(check int) "fused ternary div" 3 (List.length div.operands)

let test_self_attribute () =
  let src =
    "def forward(self, input: Tensor[2, 8], weight: Tensor[2, 8]):\n\
    \    others = self.weight.transpose(-2, -1)\n\
    \    m = torch.matmul(input, others)\n\
    \    v, i = torch.topk(m, 1, largest=False)\n\
    \    return i\n"
  in
  let m = emit src in
  Alcotest.(check int) "self param dropped" 2
    (List.length (Ir.Func_ir.find_func_exn m "forward").fn_args)

let test_operators_sugar () =
  let src =
    "def forward(a: Tensor[4, 8], b: Tensor[1, 8]):\n\
    \    d = a - b\n\
    \    n = torch.norm(d, 2, -1)\n\
    \    v, i = torch.topk(n, 1, largest=False)\n\
    \    return v, i\n"
  in
  let m = emit src in
  Alcotest.(check bool) "minus is torch.sub" true
    (List.mem "torch.sub" (op_names m))

let test_parse_errors () =
  expect_parse_error "missing colon" "def f(x: Tensor[1, 2])\n    return x\n";
  expect_parse_error "kwarg before positional"
    "def f(x: Tensor[1, 2]):\n    y = torch.topk(k=1, x)\n    return y\n";
  expect_parse_error "unterminated shape"
    "def f(x: Tensor[1, ):\n    return x\n";
  expect_parse_error "empty body" "def f(x: Tensor[1, 2]):\n"

let test_emit_errors () =
  expect_emit_error "unknown variable"
    "def forward(x: Tensor[2, 2]):\n    return y\n";
  expect_emit_error "unsupported op"
    "def forward(x: Tensor[2, 2]):\n    y = torch.relu(x)\n    return y\n";
  expect_emit_error "missing shape annotation is a parse error, \
                     non-literal k is an emit error"
    "def forward(x: Tensor[2, 2]):\n    v, i = torch.topk(x, x)\n    return v\n";
  expect_emit_error "no return"
    "def forward(x: Tensor[2, 2]):\n    y = x.transpose(0, 1)\n";
  expect_emit_error "unpack mismatch"
    "def forward(x: Tensor[2, 2]):\n    a, b = x.transpose(0, 1)\n    return a\n";
  expect_emit_error "shape mismatch in matmul"
    "def forward(x: Tensor[2, 3], y: Tensor[2, 3]):\n\
    \    z = torch.matmul(x, y)\n    return z\n"

let test_norm_defaults () =
  let src =
    "def forward(a: Tensor[4, 8], b: Tensor[1, 8]):\n\
    \    d = a - b\n\
    \    n = d.norm()\n\
    \    v, i = torch.topk(n, 2, largest=False)\n\
    \    return v, i\n"
  in
  let m = emit src in
  let fn = Ir.Func_ir.find_func_exn m "forward" in
  let norm = List.find (fun (o : Ir.Op.t) -> o.op_name = "torch.norm") fn.fn_body.body in
  Alcotest.(check int) "default p" 2 (Ir.Attr.as_int (Ir.Op.attr_exn norm "p"));
  Alcotest.(check int) "default dim" (-1)
    (Ir.Attr.as_int (Ir.Op.attr_exn norm "dim"))

let test_verifies_strictly () =
  let m = emit (Tutil.hdc_source ()) in
  match Ir.Verifier.verify_module ~strict:true m with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Ir.Verifier.error_to_string e)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments and numbers" `Quick
            test_lexer_comments_and_numbers;
        ] );
      ( "emission",
        [
          Alcotest.test_case "hdc kernel" `Quick test_hdc_kernel_emission;
          Alcotest.test_case "shape inference" `Quick test_shapes_inferred;
          Alcotest.test_case "knn broadcast" `Quick test_knn_kernel_broadcast;
          Alcotest.test_case "cosine kernel" `Quick test_cosine_kernel;
          Alcotest.test_case "self attribute" `Quick test_self_attribute;
          Alcotest.test_case "operator sugar" `Quick test_operators_sugar;
          Alcotest.test_case "norm defaults" `Quick test_norm_defaults;
          Alcotest.test_case "verifies strictly" `Quick test_verifies_strictly;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "emit errors" `Quick test_emit_errors;
        ] );
    ]
