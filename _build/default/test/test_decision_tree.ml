(* CART decision trees and their DT2CAM-style ternary mapping. *)

open Workloads

let dataset ?(seed = 23) () =
  Dataset.mnist_like ~seed ~n_features:10 ~n_classes:3 ~samples_per_class:40
    ()

let test_train_shape () =
  let model = Decision_tree.train ~max_depth:4 ~bins:8 (dataset ()) in
  Alcotest.(check bool) "depth bounded" true
    (Decision_tree.depth model.tree <= 4);
  Alcotest.(check bool) "has leaves" true
    (Decision_tree.n_leaves model.tree >= 2);
  Alcotest.(check int) "bins stored" 8 model.bins

let test_training_accuracy () =
  let ds = dataset () in
  let train, test = Dataset.split ~seed:4 ds ~train_fraction:0.75 in
  let model = Decision_tree.train ~max_depth:6 ~bins:8 train in
  let acc = Decision_tree.accuracy model test in
  Alcotest.(check bool)
    (Printf.sprintf "test accuracy %.2f > 0.8" acc)
    true (acc > 0.8)

let test_pure_node_is_leaf () =
  (* A one-class dataset trains to a single leaf. *)
  let ds =
    {
      Dataset.features = Array.make 10 [| 0.5; 0.5 |];
      labels = Array.make 10 1;
      n_classes = 2;
    }
  in
  let model = Decision_tree.train ds in
  Alcotest.(check int) "single leaf" 1 (Decision_tree.n_leaves model.tree);
  Alcotest.(check int) "predicts the class" 1
    (Decision_tree.predict model [| 0.; 0. |])

let test_quantize_clamps () =
  let ds = dataset () in
  let model = Decision_tree.train ~bins:8 ds in
  let below = Array.map (fun lo -> lo -. 100.) model.mins in
  let above = Array.map (fun hi -> hi +. 100.) model.maxs in
  Array.iter
    (fun b -> Alcotest.(check int) "clamped low" 0 b)
    (Decision_tree.quantize model below);
  Array.iter
    (fun b -> Alcotest.(check int) "clamped high" 7 b)
    (Decision_tree.quantize model above)

let test_rules_structure () =
  let model = Decision_tree.train ~max_depth:5 ~bins:8 (dataset ()) in
  let rules = Decision_tree.to_rules model in
  Alcotest.(check int) "one rule per leaf"
    (Decision_tree.n_leaves model.tree)
    (Array.length rules.patterns);
  Alcotest.(check int) "width = features x (bins-1)" (10 * 7) rules.width;
  (* each rule pins at most depth cells *)
  Array.iter
    (fun care ->
      let pinned = Array.fold_left (fun a c -> if c then a + 1 else a) 0 care in
      Alcotest.(check bool) "sparse constraints" true
        (pinned <= Decision_tree.depth model.tree))
    rules.care

let test_thermometer_encoding () =
  let model = Decision_tree.train ~bins:4 (dataset ()) in
  let q = Decision_tree.encode_query model model.mins in
  (* minimum value -> bin 0 -> all thermometer bits 0 *)
  Array.iter (fun b -> Tutil.check_float "min encodes to zeros" 0. b) q;
  let q = Decision_tree.encode_query model model.maxs in
  Array.iter (fun b -> Tutil.check_float "max encodes to ones" 1. b) q

let test_cam_matches_software () =
  let ds = dataset ~seed:31 () in
  let train, test = Dataset.split ~seed:8 ds ~train_fraction:0.7 in
  let model = Decision_tree.train ~max_depth:6 ~bins:8 train in
  let rules = Decision_tree.to_rules model in
  let spec =
    {
      (Archspec.Spec.square 32 Archspec.Spec.Base) with
      rows = max 32 (Array.length rules.patterns);
      cols = rules.width;
    }
  in
  let sim = Camsim.Simulator.create spec in
  let bank = Camsim.Simulator.alloc_bank sim ~rows:spec.rows ~cols:spec.cols in
  let mat = Camsim.Simulator.alloc_mat sim bank in
  let arr = Camsim.Simulator.alloc_array sim mat in
  let sub = Camsim.Simulator.alloc_subarray sim arr in
  let cam = Decision_tree.classify_cam sim sub rules model test.features in
  Array.iteri
    (fun i p ->
      Alcotest.(check int)
        (Printf.sprintf "query %d" i)
        (Decision_tree.predict model test.features.(i))
        p)
    cam

(* Property: every in-range sample matches exactly one rule. *)
let prop_rules_partition =
  QCheck.Test.make ~count:100 ~name:"leaf rules partition the input space"
    (QCheck.make
       QCheck.Gen.(list_size (return 10) (float_bound_inclusive 1.)))
    (fun sample ->
      let model = Decision_tree.train ~max_depth:5 ~bins:8 (dataset ()) in
      let rules = Decision_tree.to_rules model in
      let q = Decision_tree.encode_query model (Array.of_list sample) in
      let matching = ref 0 in
      Array.iteri
        (fun r pattern ->
          let ok = ref true in
          Array.iteri
            (fun j v -> if rules.care.(r).(j) && v <> q.(j) then ok := false)
            pattern;
          if !ok then incr matching)
        rules.patterns;
      !matching = 1)

let () =
  Alcotest.run "decision_tree"
    [
      ( "cart",
        [
          Alcotest.test_case "train shape" `Quick test_train_shape;
          Alcotest.test_case "accuracy" `Quick test_training_accuracy;
          Alcotest.test_case "pure node" `Quick test_pure_node_is_leaf;
          Alcotest.test_case "quantize clamps" `Quick test_quantize_clamps;
        ] );
      ( "tcam mapping",
        [
          Alcotest.test_case "rules structure" `Quick test_rules_structure;
          Alcotest.test_case "thermometer encoding" `Quick
            test_thermometer_encoding;
          Alcotest.test_case "cam matches software" `Quick
            test_cam_matches_software;
          QCheck_alcotest.to_alcotest prop_rules_partition;
        ] );
    ]
