(* The crossbar device path: simulator, mapping pass, end-to-end GEMM,
   and the CAM-vs-crossbar search comparison. *)

let xspec = { Xbar.default_spec with tile_rows = 16; tile_cols = 16 }

(* ---- device model ------------------------------------------------------ *)

let test_gemv_functional () =
  let x = Xbar.create xspec in
  let tile = Xbar.alloc_tile x in
  let _ = Xbar.write x tile [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let out, cost = Xbar.gemv x tile [| [| 1.; 1. |]; [| 2.; 0. |] |] in
  Alcotest.(check Tutil.rows_testable) "product"
    [| [| 4.; 6. |]; [| 2.; 4. |] |]
    out;
  Alcotest.(check bool) "cost positive" true
    (cost.latency > 0. && cost.energy > 0.)

let test_gemv_cost_scales_with_inputs () =
  let run m =
    let x = Xbar.create xspec in
    let tile = Xbar.alloc_tile x in
    let _ = Xbar.write x tile (Array.make_matrix 16 16 1.) in
    let _, cost = Xbar.gemv x tile (Array.make_matrix m 16 1.) in
    cost.latency
  in
  Tutil.check_float ~eps:1e-12 "latency linear in inputs" (4. *. run 1)
    (run 4)

let test_device_errors () =
  let x = Xbar.create { xspec with max_tiles = Some 1 } in
  let tile = Xbar.alloc_tile x in
  Alcotest.(check bool) "tile budget" true
    (match Xbar.alloc_tile x with
    | _ -> false
    | exception Xbar.Error _ -> true);
  Alcotest.(check bool) "unprogrammed gemv" true
    (match Xbar.gemv x tile [| [| 1. |] |] with
    | _ -> false
    | exception Xbar.Error _ -> true);
  let _ = Xbar.write x tile [| [| 1. |] |] in
  Alcotest.(check bool) "wrong input width" true
    (match Xbar.gemv x tile [| [| 1.; 2. |] |] with
    | _ -> false
    | exception Xbar.Error _ -> true);
  Alcotest.(check bool) "oversized block" true
    (match Xbar.write x tile (Array.make_matrix 20 20 1.) with
    | _ -> false
    | exception Xbar.Error _ -> true)

(* ---- compiled path ------------------------------------------------------ *)

let compiled =
  lazy
    (C4cam.Driver.compile_crossbar ~xspec
       (C4cam.Kernels.matmul ~m:5 ~k:32 ~n:48))

let test_compile_shapes () =
  let c = Lazy.force compiled in
  Alcotest.(check (list int)) "m k n" [ 5; 32; 48 ]
    [ c.x_m; c.x_k; c.x_n ];
  (* mapped IR contains the crossbar ops and two parallel loops *)
  let fn = Ir.Func_ir.find_func_exn c.x_ir c.x_fn in
  let count name =
    List.length
      (Ir.Walk.collect (fun o -> String.equal o.Ir.Op.op_name name) fn)
  in
  Alcotest.(check int) "one alloc per tile position" 1
    (count "crossbar.alloc_tile");
  Alcotest.(check int) "two parallel loops" 2 (count "scf.parallel")

let test_crossbar_matches_software_matmul () =
  let c = Lazy.force compiled in
  let rng = Workloads.Prng.create 5 in
  let mk r cdim = Array.init r (fun _ -> Array.init cdim (fun _ -> Workloads.Prng.float rng)) in
  let inputs = mk 5 32 and weights = mk 32 48 in
  let r = C4cam.Driver.run_crossbar c ~inputs ~weights in
  (* software reference *)
  let expect = Array.make_matrix 5 48 0. in
  for i = 0 to 4 do
    for l = 0 to 31 do
      for j = 0 to 47 do
        expect.(i).(j) <- expect.(i).(j) +. (inputs.(i).(l) *. weights.(l).(j))
      done
    done
  done;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> Tutil.check_float ~eps:1e-9 "product entry" expect.(i).(j) v)
        row)
    r.product;
  Alcotest.(check int) "tiles = (32/16)x(48/16)" 6 r.x_stats.x_tiles;
  Alcotest.(check int) "gemv cycles = tiles x m" 30 r.x_stats.x_gemvs;
  Alcotest.(check bool) "energy accounted" true (r.x_energy > 0.)

let test_compile_rejects_non_matmul () =
  Alcotest.(check bool) "similarity kernel rejected" true
    (match
       C4cam.Driver.compile_crossbar ~xspec
         (C4cam.Kernels.hdc_dot ~q:4 ~dims:32 ~classes:4 ~k:1)
     with
    | _ -> false
    | exception C4cam.Driver.Compile_error _ -> true)

let test_divisibility_enforced () =
  Alcotest.(check bool) "K must divide" true
    (match
       C4cam.Driver.compile_crossbar ~xspec
         (C4cam.Kernels.matmul ~m:2 ~k:20 ~n:16)
     with
    | _ -> false
    | exception C4cam.Driver.Compile_error _ -> true)

let test_cam_beats_crossbar_for_search () =
  (* The paper's core claim, measured: for a similarity search, the CAM
     pipeline beats matmul-on-crossbar followed by host top-k. *)
  let dims = 1024 and classes = 16 and q = 8 in
  let data =
    Workloads.Hdc.synthetic ~seed:9 ~dims ~n_classes:classes ~n_queries:q
      ~bits:1 ()
  in
  let cam =
    C4cam.Dse.hdc ~spec:(Archspec.Spec.square 32 Archspec.Spec.Base) ~data ()
  in
  let xc =
    C4cam.Driver.compile_crossbar
      ~xspec:{ Xbar.default_spec with tile_rows = 128; tile_cols = 16 }
      (C4cam.Kernels.matmul ~m:q ~k:dims ~n:classes)
  in
  (* weights = transposed prototypes *)
  let weights =
    Array.init dims (fun d ->
        Array.init classes (fun c -> data.stored.(c).(d)))
  in
  let xr = C4cam.Driver.run_crossbar xc ~inputs:data.queries ~weights in
  (* the crossbar still computes the right scores... *)
  Array.iteri
    (fun i row ->
      let best = Workloads.Distance.argmax row in
      Alcotest.(check int) "crossbar top-1" data.query_labels.(i) best)
    xr.product;
  (* ...but the CAM does the search much faster at comparable energy
     (and decisively wins on energy-delay product) *)
  Alcotest.(check bool)
    (Printf.sprintf "CAM much faster (%.3g vs %.3g s)" cam.latency
       xr.x_latency)
    true
    (cam.latency < 0.25 *. xr.x_latency);
  Alcotest.(check bool)
    (Printf.sprintf "CAM energy comparable (%.3g vs %.3g J)" cam.energy
       xr.x_energy)
    true
    (cam.energy < 2. *. xr.x_energy);
  Alcotest.(check bool) "CAM wins on EDP" true
    (cam.energy *. cam.latency < 0.2 *. (xr.x_energy *. xr.x_latency))

let () =
  Alcotest.run "crossbar"
    [
      ( "device",
        [
          Alcotest.test_case "gemv functional" `Quick test_gemv_functional;
          Alcotest.test_case "cost scaling" `Quick
            test_gemv_cost_scales_with_inputs;
          Alcotest.test_case "errors" `Quick test_device_errors;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "shapes" `Quick test_compile_shapes;
          Alcotest.test_case "matches software matmul" `Quick
            test_crossbar_matches_software_matmul;
          Alcotest.test_case "rejects non-matmul" `Quick
            test_compile_rejects_non_matmul;
          Alcotest.test_case "divisibility" `Quick test_divisibility_enforced;
          Alcotest.test_case "cam wins at search" `Quick
            test_cam_beats_crossbar_for_search;
        ] );
    ]
