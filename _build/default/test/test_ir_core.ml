(* Unit tests for Ir.Value, Ir.Op, Ir.Builder, Ir.Func_ir and Ir.Walk. *)

open Ir

let v ty = Value.fresh ty
let f32t shape = Types.tensor shape Types.F32

let test_value_fresh_unique () =
  let a = v Types.Index and b = v Types.Index in
  Alcotest.(check bool) "distinct ids" false (Value.equal a b);
  Alcotest.(check bool) "self equal" true (Value.equal a a)

let test_value_with_id () =
  let a = Value.with_id 100000 Types.Index in
  let b = Value.fresh Types.Index in
  Alcotest.(check bool) "counter advanced" true (b.Value.id > a.Value.id);
  Alcotest.(check string) "name" "%100000" (Value.name a)

let test_op_accessors () =
  let x = v (f32t [ 2; 2 ]) in
  let r = v (f32t [ 2; 2 ]) in
  let op =
    Op.create ~operands:[ x ] ~results:[ r ]
      ~attrs:[ ("k", Attr.Int 3) ]
      "torch.matmul"
  in
  Alcotest.(check string) "dialect" "torch" (Op.dialect op);
  Alcotest.(check string) "mnemonic" "matmul" (Op.mnemonic op);
  Alcotest.(check bool) "result" true (Value.equal (Op.result op) r);
  Alcotest.(check bool) "operand" true (Value.equal (Op.operand op 0) x);
  Alcotest.(check int) "attr" 3 (Attr.as_int (Op.attr_exn op "k"));
  Alcotest.(check bool) "missing attr" true (Op.attr op "nope" = None);
  Tutil.check_raises_invalid "operand out of range" (fun () ->
      Op.operand op 5);
  Tutil.check_raises_invalid "attr_exn missing" (fun () ->
      Op.attr_exn op "nope")

let test_op_set_attr () =
  let op = Op.create "x.y" in
  Op.set_attr op "a" (Attr.Int 1);
  Op.set_attr op "a" (Attr.Int 2);
  Alcotest.(check int) "set_attr replaces" 2 (Attr.as_int (Op.attr_exn op "a"));
  Alcotest.(check int) "no duplicates" 1 (List.length op.attrs)

let test_op_result_arity () =
  let op = Op.create ~results:[ v Types.Index; v Types.Index ] "a.b" in
  Tutil.check_raises_invalid "result on two-result op" (fun () ->
      Op.result op);
  Alcotest.(check bool) "result_n" true
    (Value.equal (Op.result_n op 1) (List.nth op.results 1))

let test_num_ops_nested () =
  let inner = Op.create "a.inner" in
  let loop = Op.create ~regions:[ Op.region [ inner ] ] "scf.for" in
  Alcotest.(check int) "nested count" 2 (Op.num_ops loop);
  Alcotest.(check int) "flat count" 1 (Op.num_ops inner)

let test_builder () =
  let ops =
    Builder.build (fun b ->
        let x = Builder.op1 b "a.one" Types.Index in
        Builder.op0 b ~operands:[ x ] "a.sink")
  in
  Alcotest.(check int) "two ops" 2 (List.length ops);
  Alcotest.(check string) "order preserved" "a.one"
    (List.hd ops).Op.op_name

let test_func_helpers () =
  let m = Tutil.hdc_torch () in
  Alcotest.(check bool) "find existing" true
    (Func_ir.find_func m "forward" <> None);
  Alcotest.(check bool) "find missing" true
    (Func_ir.find_func m "nope" = None);
  Tutil.check_raises_invalid "find_func_exn missing" (fun () ->
      Func_ir.find_func_exn m "nope");
  Alcotest.(check int) "op count" 4 (Func_ir.num_ops m)

let test_walk_collect () =
  let m = Tutil.hdc_torch () in
  let fn = Func_ir.find_func_exn m "forward" in
  let matmuls =
    Walk.collect (fun o -> String.equal o.Op.op_name "torch.matmul") fn
  in
  Alcotest.(check int) "one matmul" 1 (List.length matmuls);
  let all = Walk.collect (fun _ -> true) fn in
  Alcotest.(check int) "all ops" 4 (List.length all)

let test_walk_find_def () =
  let m = Tutil.hdc_torch () in
  let fn = Func_ir.find_func_exn m "forward" in
  let matmul =
    List.hd (Walk.collect (fun o -> String.equal o.Op.op_name "torch.matmul") fn)
  in
  (match Walk.find_def fn (Op.operand matmul 1) with
  | Some def ->
      Alcotest.(check string) "transpose defines operand 1" "torch.transpose"
        def.Op.op_name
  | None -> Alcotest.fail "no def found");
  (* function arguments have no defining op *)
  Alcotest.(check bool) "arg has no def" true
    (Walk.find_def fn (List.hd fn.fn_args) = None)

let test_walk_used_values () =
  (* free values of an op with a region: operands of nested ops that are
     not defined inside *)
  let outer_val = v Types.Index in
  let inner = Op.create ~operands:[ outer_val ] "a.use" in
  let loop = Op.create ~regions:[ Op.region [ inner ] ] "scf.for" in
  let free = Walk.used_values loop in
  Alcotest.(check int) "one free value" 1 (List.length free);
  Alcotest.(check bool) "the outer one" true
    (Value.equal (List.hd free) outer_val);
  (* a block-arg use is not free *)
  let iv = v Types.Index in
  let inner2 = Op.create ~operands:[ iv ] "a.use" in
  let region =
    { Op.blocks = [ { Op.body = [ inner2 ]; block_args = [ iv ] } ] }
  in
  let loop2 = Op.create ~regions:[ region ] "scf.for" in
  Alcotest.(check int) "block arg not free" 0
    (List.length (Walk.used_values loop2))

let test_map_top_ops () =
  let m = Tutil.hdc_torch () in
  let fn = Func_ir.find_func_exn m "forward" in
  let doubled =
    Walk.map_top_ops (fun op -> [ op; Op.create "a.marker" ]) fn
  in
  Alcotest.(check int) "doubled" 8 (List.length doubled.fn_body.body)

let () =
  Alcotest.run "ir_core"
    [
      ( "value",
        [
          Alcotest.test_case "fresh unique" `Quick test_value_fresh_unique;
          Alcotest.test_case "with_id" `Quick test_value_with_id;
        ] );
      ( "op",
        [
          Alcotest.test_case "accessors" `Quick test_op_accessors;
          Alcotest.test_case "set_attr" `Quick test_op_set_attr;
          Alcotest.test_case "result arity" `Quick test_op_result_arity;
          Alcotest.test_case "num_ops nested" `Quick test_num_ops_nested;
        ] );
      ( "builder",
        [ Alcotest.test_case "build order" `Quick test_builder ] );
      ( "func",
        [ Alcotest.test_case "helpers" `Quick test_func_helpers ] );
      ( "walk",
        [
          Alcotest.test_case "collect" `Quick test_walk_collect;
          Alcotest.test_case "find_def" `Quick test_walk_find_def;
          Alcotest.test_case "used_values" `Quick test_walk_used_values;
          Alcotest.test_case "map_top_ops" `Quick test_map_top_ops;
        ] );
    ]
