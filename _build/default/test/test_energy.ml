(* Energy/latency model: paper anchors, monotonicity, multi-bit penalty,
   density penalties, and selection costs. *)

let tech = Camsim.Tech.fefet_45nm

let search ?(cols = 32) ?(active_rows = 10) ?(bits = 1)
    ?(kind = `Best) ?(queries = 1) ?(batch_extra = false) ?physical_rows ()
    =
  Camsim.Energy_model.search tech ~bits ~cols ~active_rows ?physical_rows
    ~kind ~queries ~batch_extra ()

let test_latency_anchors () =
  (* The paper's two anchor points: 860 ps at 16x16, 7.5 ns at 256x256. *)
  Tutil.check_float ~eps:1e-6 "16 columns" 860e-12
    (Camsim.Tech.search_latency tech ~cols:16);
  Tutil.check_float ~eps:1e-6 "256 columns" 7.5e-9
    (Camsim.Tech.search_latency tech ~cols:256)

let test_latency_monotone_in_cols () =
  let l c = (search ~cols:c ()).latency in
  Alcotest.(check bool) "ML discharge slows with C" true
    (l 16 < l 32 && l 32 < l 64 && l 64 < l 128 && l 128 < l 256)

let test_latency_linear_in_queries () =
  let l q = (search ~queries:q ()).latency in
  Tutil.check_float ~eps:1e-9 "10 queries = 10x" (10. *. l 1) (l 10)

let test_energy_monotone_in_rows () =
  let e r = (search ~active_rows:r ()).energy in
  Alcotest.(check bool) "more active rows, more energy" true
    (e 4 < e 8 && e 8 < e 16)

let test_selective_precharge_saves () =
  (* Selective row precharge: fewer active rows cost less than a full
     array search on the same geometry. *)
  let partial = (search ~cols:64 ~active_rows:10 ()).energy in
  let full = (search ~cols:64 ~active_rows:64 ()).energy in
  Alcotest.(check bool) "selective saves energy" true (partial < full /. 2.)

let test_multibit_penalty () =
  let e1 = (search ~bits:1 ()).energy in
  let e2 = (search ~bits:2 ()).energy in
  let e3 = (search ~bits:3 ()).energy in
  Alcotest.(check bool) "multi-bit costs more" true (e1 < e2 && e2 < e3);
  Tutil.check_float "voltage factor squared" (1.3 *. 1.3)
    (Camsim.Tech.voltage_energy_factor tech ~bits:2);
  Tutil.check_float "binary factor is 1" 1.
    (Camsim.Tech.voltage_energy_factor tech ~bits:1)

let test_exact_cheaper_than_best () =
  let eb = (search ~kind:`Best ()).energy in
  let ee = (search ~kind:`Exact ()).energy in
  Alcotest.(check bool) "exact sensing is cheaper" true (ee < eb)

let test_batch_extra_penalties () =
  let base = search () in
  let batched = search ~batch_extra:true ~physical_rows:32 () in
  Alcotest.(check bool) "batching costs extra time" true
    (batched.latency > base.latency);
  Alcotest.(check bool) "batching costs extra energy" true
    (batched.energy > base.energy);
  (* the precharge penalty grows with the physical row count *)
  let big = search ~batch_extra:true ~physical_rows:256 ~cols:256 () in
  let small = search ~batch_extra:true ~physical_rows:32 ~cols:256 () in
  Alcotest.(check bool) "penalty scales with rows" true
    (big.energy > small.energy)

let test_write_cost () =
  let w = Camsim.Energy_model.write tech ~bits:1 ~cols:32 ~rows:10 in
  Tutil.check_float ~eps:1e-9 "row-serial write" (10. *. tech.t_write_row)
    w.latency;
  let w2 = Camsim.Energy_model.write tech ~bits:2 ~cols:32 ~rows:10 in
  Alcotest.(check bool) "multibit write dearer" true (w2.energy > w.energy)

let test_merge_cost_linear () =
  let m n = Camsim.Energy_model.merge tech ~elems:n in
  Tutil.check_float ~eps:1e-9 "linear energy" (2. *. (m 10).energy)
    (m 20).energy;
  Tutil.check_float ~eps:1e-9 "linear latency" (2. *. (m 10).latency)
    (m 20).latency

let test_select_cost () =
  let s n k = Camsim.Energy_model.select tech ~elems_per_query:n ~k ~queries:1 in
  Alcotest.(check bool) "latency grows with log n" true
    ((s 16 1).latency < (s 4096 1).latency);
  Alcotest.(check bool) "latency grows with k" true
    ((s 256 1).latency < (s 256 8).latency);
  Alcotest.(check bool) "energy grows with n" true
    ((s 16 1).energy < (s 4096 1).energy)

let test_level_overheads_ordered () =
  let e l =
    (Camsim.Energy_model.level_overhead tech ~level:l ~queries:1).energy
  in
  Alcotest.(check bool) "bank > mat > array > subarray" true
    (e `Bank > e `Mat && e `Mat > e `Array && e `Array > e `Subarray);
  Tutil.check_float "subarray overhead is zero" 0. (e `Subarray)

let test_v2_close_but_different () =
  let v2 = Camsim.Tech.fefet_45nm_v2 in
  let e1 = (search ()).energy in
  let e2 =
    (Camsim.Energy_model.search v2 ~bits:1 ~cols:32 ~active_rows:10
       ~kind:`Best ~queries:1 ~batch_extra:false ()).energy
  in
  let dev = Float.abs (e2 -. e1) /. e1 in
  Alcotest.(check bool) "within 15%" true (dev < 0.15);
  Alcotest.(check bool) "but not identical" true (dev > 0.001)

let test_cost_add () =
  let a = { Camsim.Energy_model.latency = 1.; energy = 2. } in
  let b = { Camsim.Energy_model.latency = 3.; energy = 4. } in
  let c = Camsim.Energy_model.add a b in
  Tutil.check_float "latency adds" 4. c.latency;
  Tutil.check_float "energy adds" 6. c.energy;
  Tutil.check_float "zero" 0. Camsim.Energy_model.zero.latency

let prop_energy_positive =
  QCheck.Test.make ~count:200 ~name:"search cost is always positive"
    QCheck.(
      quad (Gen.int_range 1 512 |> QCheck.make) (QCheck.make (Gen.int_range 1 512))
        (QCheck.make (Gen.int_range 1 4))
        (QCheck.make (Gen.int_range 1 64)))
    (fun (cols, rows, bits, queries) ->
      let c = search ~cols ~active_rows:rows ~bits ~queries () in
      c.energy > 0. && c.latency > 0.)

let () =
  Alcotest.run "energy"
    [
      ( "latency",
        [
          Alcotest.test_case "paper anchors" `Quick test_latency_anchors;
          Alcotest.test_case "monotone in cols" `Quick
            test_latency_monotone_in_cols;
          Alcotest.test_case "linear in queries" `Quick
            test_latency_linear_in_queries;
        ] );
      ( "energy",
        [
          Alcotest.test_case "monotone in rows" `Quick
            test_energy_monotone_in_rows;
          Alcotest.test_case "selective precharge" `Quick
            test_selective_precharge_saves;
          Alcotest.test_case "multi-bit penalty" `Quick test_multibit_penalty;
          Alcotest.test_case "exact vs best sensing" `Quick
            test_exact_cheaper_than_best;
          Alcotest.test_case "batch penalties" `Quick
            test_batch_extra_penalties;
          Alcotest.test_case "write" `Quick test_write_cost;
          Alcotest.test_case "merge linear" `Quick test_merge_cost_linear;
          Alcotest.test_case "select" `Quick test_select_cost;
          Alcotest.test_case "level overheads" `Quick
            test_level_overheads_ordered;
          Alcotest.test_case "v2 calibration" `Quick
            test_v2_close_but_different;
          Alcotest.test_case "cost add" `Quick test_cost_add;
          QCheck_alcotest.to_alcotest prop_energy_positive;
        ] );
    ]
