(* DFG pattern matching (the mechanism of Algorithm 1). *)

open Ir

let f32 shape = Types.tensor shape Types.F32

(* Build the torch-level HDC chain as raw ops for matching. *)
let dot_chain () =
  let input = Value.fresh (f32 [ 4; 64 ]) in
  let weight = Value.fresh (f32 [ 4; 64 ]) in
  let t = Value.fresh (f32 [ 64; 4 ]) in
  let mm = Value.fresh (f32 [ 4; 4 ]) in
  let v = Value.fresh (f32 [ 4; 1 ]) in
  let i = Value.fresh (Types.tensor [ 4; 1 ] Types.I32) in
  [
    Op.create ~operands:[ weight ] ~results:[ t ] "cim.transpose";
    Op.create ~operands:[ input; t ] ~results:[ mm ] "cim.matmul";
    Op.create ~operands:[ mm ] ~results:[ v; i ] "cim.topk";
    Op.create ~operands:[ i ] "cim.yield";
  ]

let pattern =
  Rewriter.
    [
      node "cim.transpose" [];
      node "cim.matmul" [ Res 0 ];
      node "cim.topk" [ Res 1 ];
      node "cim.yield" [ Res 2 ];
    ]

let test_match () =
  Alcotest.(check bool) "dot chain matches" true
    (Rewriter.similar_dfg (dot_chain ()) pattern)

let test_length_mismatch () =
  Alcotest.(check bool) "short list" false
    (Rewriter.similar_dfg (List.tl (dot_chain ())) pattern)

let test_name_mismatch () =
  let ops = dot_chain () in
  let renamed =
    List.mapi
      (fun i (op : Op.t) ->
        if i = 1 then { op with op_name = "cim.mm" } else op)
      ops
  in
  Alcotest.(check bool) "wrong op name" false
    (Rewriter.similar_dfg renamed pattern)

let test_dataflow_mismatch () =
  (* Break the edge: make topk consume the transpose result instead of
     the matmul result. *)
  let ops = dot_chain () in
  let transpose = List.nth ops 0 in
  let topk = List.nth ops 2 in
  topk.Op.operands <- [ Op.result transpose ];
  Alcotest.(check bool) "broken dataflow" false
    (Rewriter.similar_dfg ops pattern)

let test_external_always_matches () =
  let p =
    Rewriter.
      [
        node "cim.transpose" [ External ];
        node "cim.matmul" [ External; Res 0 ];
        node "cim.topk" [ Res 1 ];
        node "cim.yield" [ Res 2 ];
      ]
  in
  Alcotest.(check bool) "externals ok" true
    (Rewriter.similar_dfg (dot_chain ()) p)

let test_forward_reference_rejected () =
  (* A node may only reference earlier nodes. *)
  let p =
    Rewriter.
      [
        node "cim.transpose" [ Res 1 ];
        node "cim.matmul" [];
        node "cim.topk" [];
        node "cim.yield" [];
      ]
  in
  Alcotest.(check bool) "forward ref fails" false
    (Rewriter.similar_dfg (dot_chain ()) p)

let test_match_prefix () =
  let ops = dot_chain () @ [ Op.create "cim.extra" ] in
  (match Rewriter.match_prefix ops pattern with
  | Some matched -> Alcotest.(check int) "prefix length" 4 (List.length matched)
  | None -> Alcotest.fail "prefix should match");
  Alcotest.(check bool) "too-short list" true
    (Rewriter.match_prefix [ List.hd ops ] pattern = None)

let test_algorithm1 () =
  (* The exported SimilarityMatching over the same chains. *)
  Alcotest.(check bool) "dot recognized" true
    (Passes.Cim_fusion.similarity_matching (dot_chain ()) = Some `Dot);
  (* euclidean chain *)
  let stored = Value.fresh (f32 [ 8; 64 ]) in
  let query = Value.fresh (f32 [ 1; 64 ]) in
  let diff = Value.fresh (f32 [ 8; 64 ]) in
  let dist = Value.fresh (f32 [ 8 ]) in
  let v = Value.fresh (f32 [ 3 ]) in
  let i = Value.fresh (Types.tensor [ 3 ] Types.I32) in
  let chain =
    [
      Op.create ~operands:[ stored; query ] ~results:[ diff ] "cim.sub";
      Op.create ~operands:[ diff ] ~results:[ dist ] "cim.norm";
      Op.create ~operands:[ dist ] ~results:[ v; i ] "cim.topk";
      Op.create ~operands:[ v; i ] "cim.yield";
    ]
  in
  Alcotest.(check bool) "eucl recognized" true
    (Passes.Cim_fusion.similarity_matching chain = Some `Eucl);
  Alcotest.(check bool) "wrong size rejected" true
    (Passes.Cim_fusion.similarity_matching (List.tl chain) = None)

let () =
  Alcotest.run "rewriter"
    [
      ( "similar_dfg",
        [
          Alcotest.test_case "match" `Quick test_match;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "name mismatch" `Quick test_name_mismatch;
          Alcotest.test_case "dataflow mismatch" `Quick test_dataflow_mismatch;
          Alcotest.test_case "external refs" `Quick test_external_always_matches;
          Alcotest.test_case "forward refs rejected" `Quick
            test_forward_reference_rejected;
          Alcotest.test_case "match_prefix" `Quick test_match_prefix;
        ] );
      ( "algorithm1",
        [ Alcotest.test_case "similarity matching" `Quick test_algorithm1 ] );
    ]
