(* CAM vs crossbar for similarity search — the comparison implicit in
   the paper's framing: general CIM compilers target crossbars, but
   search-dominated kernels want CAMs.

   The same HDC classification task runs both ways:
   - C4CAM path: the similarity kernel fused by Algorithm 1 and mapped
     onto TCAM subarrays (one best-match search);
   - crossbar path (Figure 3's sibling device dialect): the score matrix
     computed as a matmul on ReRAM tiles, top-1 selected on the host.

   Both produce the same predictions; the latency/energy gap is the
   point.

   Run with:  dune exec examples/crossbar_vs_cam.exe *)

let dims = 4096
let classes = 10
let q = 32

let () =
  let data =
    Workloads.Hdc.synthetic ~seed:15 ~dims ~n_classes:classes ~n_queries:q
      ~bits:1 ()
  in

  (* --- CAM path -------------------------------------------------------- *)
  let cam =
    C4cam.Dse.hdc ~spec:(Archspec.Spec.square 32 Archspec.Spec.Base) ~data ()
  in

  (* --- crossbar path --------------------------------------------------- *)
  let xspec = { Xbar.default_spec with tile_rows = 128; tile_cols = 10 } in
  let xc =
    C4cam.Driver.compile_crossbar ~xspec
      (C4cam.Kernels.matmul ~m:q ~k:dims ~n:classes)
  in
  let weights =
    Array.init dims (fun d ->
        Array.init classes (fun c -> data.stored.(c).(d)))
  in
  let xr = C4cam.Driver.run_crossbar xc ~inputs:data.queries ~weights in
  let x_correct = ref 0 in
  Array.iteri
    (fun i row ->
      if Workloads.Distance.argmax row = data.query_labels.(i) then
        incr x_correct)
    xr.product;

  Printf.printf "HDC classification, %d queries x %d dims, %d classes\n\n"
    q dims classes;
  print_string
    (C4cam.Report.table
       ~headers:[ "fabric"; "latency"; "energy"; "EDP"; "accuracy" ]
       [
         [
           "TCAM (C4CAM similarity)";
           C4cam.Report.si_time cam.latency;
           C4cam.Report.si_energy cam.energy;
           Printf.sprintf "%.2e J.s" (cam.energy *. cam.latency);
           Printf.sprintf "%.0f%%" (cam.accuracy *. 100.);
         ];
         [
           "ReRAM crossbar (matmul) + host top-1";
           C4cam.Report.si_time xr.x_latency;
           C4cam.Report.si_energy xr.x_energy;
           Printf.sprintf "%.2e J.s" (xr.x_energy *. xr.x_latency);
           Printf.sprintf "%.0f%%"
             (float_of_int !x_correct /. float_of_int q *. 100.);
         ];
       ]);
  Printf.printf
    "\nsearch on the CAM is %.1fx faster and %.1fx better in EDP than\n\
     computing scores on a crossbar — the reason search-dominated\n\
     kernels want a CAM-aware compiler.\n"
    (xr.x_latency /. cam.latency)
    (xr.x_energy *. xr.x_latency /. (cam.energy *. cam.latency))
