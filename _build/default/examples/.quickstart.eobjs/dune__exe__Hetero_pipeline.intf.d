examples/hetero_pipeline.mli:
