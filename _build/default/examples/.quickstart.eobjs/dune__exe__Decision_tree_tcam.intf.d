examples/decision_tree_tcam.mli:
