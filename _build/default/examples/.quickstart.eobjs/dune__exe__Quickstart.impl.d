examples/quickstart.ml: Archspec Array C4cam Camsim Interp Ir Printf Workloads
