examples/decision_tree_tcam.ml: Archspec Array Camsim Printf Workloads
