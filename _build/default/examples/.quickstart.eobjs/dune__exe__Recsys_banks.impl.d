examples/recsys_banks.ml: Archspec Array C4cam Camsim Float List Printf String Workloads
