examples/tcam_wildcard.mli:
