examples/crossbar_vs_cam.mli:
