examples/crossbar_vs_cam.ml: Archspec Array C4cam Printf Workloads Xbar
