examples/genome_match.mli:
