examples/knn_pneumonia.ml: Archspec Array C4cam List Printf Workloads
