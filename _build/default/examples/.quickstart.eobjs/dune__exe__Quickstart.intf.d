examples/quickstart.mli:
