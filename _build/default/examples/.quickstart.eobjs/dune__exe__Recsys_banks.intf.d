examples/recsys_banks.mli:
