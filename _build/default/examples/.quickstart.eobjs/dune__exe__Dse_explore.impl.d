examples/dse_explore.ml: Archspec C4cam List Printf Workloads
