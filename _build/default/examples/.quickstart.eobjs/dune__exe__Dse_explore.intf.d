examples/dse_explore.mli:
