examples/tcam_wildcard.ml: Archspec Array Camsim List Printf String
