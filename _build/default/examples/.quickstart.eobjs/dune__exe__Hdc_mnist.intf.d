examples/hdc_mnist.mli:
