examples/genome_match.ml: Array Camsim List Printf String Workloads
