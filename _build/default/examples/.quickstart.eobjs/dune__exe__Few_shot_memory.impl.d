examples/few_shot_memory.ml: Camsim List Printf Workloads
