examples/hetero_pipeline.ml: Archspec Array C4cam List Printf Workloads
