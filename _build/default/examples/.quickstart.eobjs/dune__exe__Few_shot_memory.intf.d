examples/few_shot_memory.mli:
