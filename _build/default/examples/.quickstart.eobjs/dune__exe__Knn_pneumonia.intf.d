examples/knn_pneumonia.mli:
