examples/hdc_mnist.ml: Archspec Array C4cam List Printf Workloads
