(* Design-space exploration without recoding the application: the same
   TorchScript kernel is compiled against architecture specifications
   written in C4CAM's configuration format (Section III-B), including
   the iso-capacity setups of Section IV-C2 and the GPU comparison.

   Run with:  dune exec examples/dse_explore.exe *)

let spec_text ~side ~opt =
  Printf.sprintf
    "# generated architecture specification\n\
     rows = %d\n\
     cols = %d\n\
     subarrays_per_array = 8\n\
     arrays_per_mat = 4\n\
     mats_per_bank = 4\n\
     banks = auto\n\
     cam = tcam\n\
     bits = 1\n\
     optimization = %s\n"
    side side opt

let () =
  let data =
    Workloads.Hdc.synthetic ~seed:11 ~dims:4096 ~n_classes:10 ~n_queries:64
      ~bits:1 ()
  in

  (* 1. Sweep subarray sizes and optimization targets from config text. *)
  print_endline "== sweep from architecture-specification files ==";
  let rows =
    List.concat_map
      (fun side ->
        List.map
          (fun opt ->
            let spec =
              match Archspec.Spec.of_string (spec_text ~side ~opt) with
              | Ok s -> s
              | Error e -> failwith e
            in
            let m = C4cam.Dse.hdc ~spec ~data () in
            [
              m.config;
              C4cam.Report.si_time m.latency;
              C4cam.Report.si_energy m.energy;
              C4cam.Report.si_power m.power;
              string_of_int m.subarrays;
            ])
          [ "latency"; "power"; "utilization" ])
      [ 16; 64; 256 ]
  in
  print_string
    (C4cam.Report.table
       ~headers:[ "config"; "latency"; "energy"; "power"; "subarrays" ]
       rows);

  (* 2. Iso-capacity: 2^16 cells per array, subarray size varies. *)
  print_endline "\n== iso-capacity (2^16 cells per array) ==";
  let rows =
    List.map
      (fun side ->
        let spec = C4cam.Dse.iso_capacity_spec ~side Archspec.Spec.Base in
        let m = C4cam.Dse.hdc ~spec ~data () in
        [
          Printf.sprintf "%dx%d (%d subarrays/array)" side side
            spec.subarrays_per_array;
          C4cam.Report.si_time m.latency;
          C4cam.Report.si_energy m.energy;
          C4cam.Report.si_power m.power;
        ])
      [ 16; 32; 64; 128; 256 ]
  in
  print_string
    (C4cam.Report.table
       ~headers:[ "subarray"; "latency"; "energy"; "power" ]
       rows);

  (* 3. End-to-end comparison against the GPU model. *)
  print_endline "\n== GPU comparison ==";
  let r =
    C4cam.Dse.gpu_comparison_hdc
      ~spec:(Archspec.Spec.square 32 Archspec.Spec.Base)
      ~data ()
  in
  Printf.printf
    "GPU %s / CAM %s  -> speedup %.1fx\nGPU %s / CIM-system %s -> energy \
     improvement %.1fx\n"
    (C4cam.Report.si_time r.gpu_latency)
    (C4cam.Report.si_time r.cam_latency)
    r.speedup
    (C4cam.Report.si_energy r.gpu_energy)
    (C4cam.Report.si_energy r.cam_system_energy)
    r.energy_improvement
