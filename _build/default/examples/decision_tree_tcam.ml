(* Decision-tree inference on a TCAM (the DT2CAM scheme, reproduced as a
   workload on the general simulator).

   A CART tree is trained in software, flattened into ternary rules —
   one TCAM row per leaf, with each path condition pinning a single
   thermometer bit and everything else a don't-care — and queries are
   classified with one exact-match search each. The CAM predictions are
   compared against the software tree one by one.

   Run with:  dune exec examples/decision_tree_tcam.exe *)

let () =
  let ds =
    Workloads.Dataset.mnist_like ~seed:23 ~n_features:12 ~n_classes:4
      ~samples_per_class:60 ()
  in
  let train, test = Workloads.Dataset.split ~seed:3 ds ~train_fraction:0.75 in
  let model = Workloads.Decision_tree.train ~max_depth:6 ~bins:8 train in
  let rules = Workloads.Decision_tree.to_rules model in
  Printf.printf
    "tree: depth %d, %d leaves -> %d ternary rules of %d cells each\n"
    (Workloads.Decision_tree.depth model.tree)
    (Workloads.Decision_tree.n_leaves model.tree)
    (Array.length rules.patterns) rules.width;

  (* one subarray large enough for the rule table *)
  let spec =
    {
      (Archspec.Spec.square 32 Archspec.Spec.Base) with
      rows = max 32 (Array.length rules.patterns);
      cols = rules.width;
    }
  in
  let sim = Camsim.Simulator.create spec in
  Camsim.Simulator.set_query_hint sim (Workloads.Dataset.n_samples test);
  let bank = Camsim.Simulator.alloc_bank sim ~rows:spec.rows ~cols:spec.cols in
  let mat = Camsim.Simulator.alloc_mat sim bank in
  let arr = Camsim.Simulator.alloc_array sim mat in
  let sub = Camsim.Simulator.alloc_subarray sim arr in

  let cam_predictions =
    Workloads.Decision_tree.classify_cam sim sub rules model test.features
  in
  let agree = ref 0 and correct = ref 0 in
  Array.iteri
    (fun i p ->
      if p = Workloads.Decision_tree.predict model test.features.(i) then
        incr agree;
      if p = test.labels.(i) then incr correct)
    cam_predictions;
  let n = Workloads.Dataset.n_samples test in
  Printf.printf "CAM agrees with the software tree on %d/%d queries\n"
    !agree n;
  Printf.printf "classification accuracy: software %.1f%%, CAM %.1f%%\n"
    (Workloads.Decision_tree.accuracy model test *. 100.)
    (float_of_int !correct /. float_of_int n *. 100.);
  Printf.printf "\n%s\n"
    (Camsim.Stats.to_string (Camsim.Simulator.stats sim))
