(* Few-shot learning with a CAM episodic memory (one-shot-learning
   use case from the paper's introduction).

   Per episode: embed the N-way x K-shot support set into binary keys
   with a fixed random-projection embedder, write them into a CAM, and
   classify queries with a best-match search + majority vote. No
   training, instant "learning" of novel classes — the property that
   makes CAMs attractive for memory-augmented models.

   Run with:  dune exec examples/few_shot_memory.exe *)

let () =
  let embedder = Workloads.Few_shot.embedder ~in_dim:64 ~out_dim:256 () in
  List.iter
    (fun (n_way, k_shot) ->
      let accs = ref [] in
      let stats = ref None in
      for ep = 1 to 10 do
        let episode =
          Workloads.Few_shot.make_episode ~seed:(100 + ep) ~n_way ~k_shot
            ~n_queries:20 ~dim:64 ()
        in
        let cam_predictions, st =
          Workloads.Few_shot.classify_cam embedder episode ~k:(min 3 k_shot)
        in
        let sw_predictions =
          Workloads.Few_shot.classify_software embedder episode
            ~k:(min 3 k_shot)
        in
        assert (cam_predictions = sw_predictions);
        accs :=
          Workloads.Few_shot.episode_accuracy cam_predictions
            episode.query_labels
          :: !accs;
        stats := Some st
      done;
      let mean =
        List.fold_left ( +. ) 0. !accs /. float_of_int (List.length !accs)
      in
      Printf.printf "%d-way %d-shot: %.1f%% over 10 episodes (CAM = software)\n"
        n_way k_shot (mean *. 100.);
      match !stats with
      | Some st ->
          Printf.printf "  last episode: %s\n" (Camsim.Stats.to_string st)
      | None -> ())
    [ (5, 1); (5, 5); (10, 5) ]
