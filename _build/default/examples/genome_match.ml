(* Approximate genome pattern matching on a CAM (the EDAM use case).

   The reference sequence's k-mers are stored one per row; a single
   threshold search finds every position within the mismatch budget of
   the query pattern. The CAM hit list is compared against a naive
   software scan.

   Run with:  dune exec examples/genome_match.exe *)

let () =
  let reference = Workloads.Genome.random_sequence ~seed:101 480 in
  let k = 24 in
  (* plant three mutated copies of a pattern in the reference *)
  let pattern =
    Workloads.Genome.of_string "ACGTTGCAACGTGGATCCTAGGCA"
  in
  assert (Array.length pattern = k);
  let plant at mutations =
    let copy = Workloads.Genome.mutate ~seed:at pattern ~rate:mutations in
    Array.blit copy 0 reference at k
  in
  plant 37 0.0;
  plant 191 0.06;
  plant 402 0.15;

  let index = Workloads.Genome.build_index ~reference ~k () in
  Printf.printf "indexed %d k-mers (k = %d) of a %d-base reference\n"
    index.positions k (Array.length reference);

  List.iter
    (fun budget ->
      let cam = Workloads.Genome.scan_cam index ~pattern ~max_mismatches:budget in
      let sw =
        Workloads.Genome.scan_software ~reference ~pattern
          ~max_mismatches:budget
      in
      Printf.printf
        "<= %d mismatches: CAM finds positions [%s] (software agrees: %b)\n"
        budget
        (String.concat "; " (List.map string_of_int cam))
        (cam = sw))
    [ 0; 2; 4 ];
  Printf.printf "\n%s\n"
    (Camsim.Stats.to_string (Camsim.Simulator.stats index.sim))
