(* Quickstart: compile the paper's HDC dot-similarity kernel from
   TorchScript down to CAM calls, run it on the simulated accelerator,
   and cross-check the result against the torch-level software
   reference.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A tiny workload: 4 class prototypes of 256 bits, 8 queries. *)
  let synth =
    Workloads.Hdc.synthetic ~dims:256 ~n_classes:4 ~n_queries:8 ~bits:1 ()
  in
  let q = Array.length synth.queries in

  (* 2. The TorchScript kernel (same shape as the paper's Figure 4a). *)
  let source = C4cam.Kernels.hdc_dot ~q ~dims:256 ~classes:4 ~k:1 in
  print_string "== TorchScript input ==";
  print_string source;

  (* 3. Compile for a 32x32 TCAM accelerator. *)
  let spec = Archspec.Spec.square 32 Archspec.Spec.Base in
  let compiled = C4cam.Driver.compile ~spec source in
  print_endline "== torch IR ==";
  print_string (Ir.Printer.module_to_string compiled.torch_ir);

  (* 4. Run on the CAM simulator. *)
  let result =
    C4cam.Driver.run_cam compiled ~queries:synth.queries
      ~stored:synth.stored
  in
  Printf.printf "\n== CAM run ==\nlatency  %.3e s\nenergy   %.3e J\npower    %.3f W\n"
    result.latency result.energy result.power;
  Printf.printf "%s\n" (Camsim.Stats.to_string result.stats);

  (* 5. Compare predictions against the software reference. *)
  let reference =
    C4cam.Driver.run_reference compiled ~queries:synth.queries
      ~stored:synth.stored
  in
  let ref_indices =
    match reference with
    | [ _values; indices ] -> Interp.Rtval.to_int_rows indices
    | _ -> failwith "unexpected reference result"
  in
  let agree = ref 0 in
  Array.iteri
    (fun i row ->
      if row.(0) = ref_indices.(i).(0) then incr agree)
    result.indices;
  Printf.printf "\npredictions matching the software reference: %d/%d\n"
    !agree q;
  let correct = ref 0 in
  Array.iteri
    (fun i row ->
      if row.(0) = synth.query_labels.(i) then incr correct)
    result.indices;
  Printf.printf "classification accuracy on noisy queries: %d/%d\n" !correct q
