(* Hyperdimensional-computing classification on a synthetic MNIST-like
   dataset (the paper's first benchmark), end to end:

     pixels -> HDC encoding -> class prototypes (training)
            -> TorchScript similarity kernel -> C4CAM -> CAM simulator

   The CAM's predictions are compared against the pure-software HDC
   reference, and the run is repeated for binary and 2-bit prototypes
   (the two implementations validated in Figure 7).

   Run with:  dune exec examples/hdc_mnist.exe *)

let dims = 2048
let n_classes = 10

let () =
  (* 1. Data: 10 digit-like classes, 64 features. *)
  let ds =
    Workloads.Dataset.mnist_like ~seed:5 ~n_features:64 ~n_classes
      ~samples_per_class:30 ()
  in
  let train, test = Workloads.Dataset.split ~seed:9 ds ~train_fraction:0.7 in
  Printf.printf "dataset: %d train / %d test samples, %d features\n"
    (Workloads.Dataset.n_samples train)
    (Workloads.Dataset.n_samples test)
    (Workloads.Dataset.n_features ds);

  List.iter
    (fun bits ->
      Printf.printf "\n--- %d-bit HDC, %d dims ---\n" bits dims;
      (* 2. Train: encode every training sample, bundle per class. *)
      let config =
        { Workloads.Hdc.default_config with dims; levels = 8; bits }
      in
      let im, model = Workloads.Hdc.train config train in
      let sw_acc = Workloads.Hdc.accuracy_ref model im test in

      (* 3. Encode the test queries and run them through the compiler. *)
      let queries =
        Array.map (Workloads.Hdc.encode config im) test.features
      in
      let q = Array.length queries in
      let source = C4cam.Kernels.hdc_dot ~q ~dims ~classes:n_classes ~k:1 in
      let spec =
        { (Archspec.Spec.square 32 Archspec.Spec.Base) with bits }
      in
      let compiled = C4cam.Driver.compile ~spec source in
      let r =
        C4cam.Driver.run_cam compiled ~queries ~stored:model.class_hvs
      in

      (* 4. Report. *)
      let correct = ref 0 in
      Array.iteri
        (fun i (row : int array) ->
          if row.(0) = test.labels.(i) then incr correct)
        r.indices;
      Printf.printf "software accuracy : %.1f%%\n" (sw_acc *. 100.);
      Printf.printf "CAM accuracy      : %.1f%% (%d/%d)\n"
        (float_of_int !correct /. float_of_int q *. 100.)
        !correct q;
      Printf.printf "latency %s | energy %s | power %s | %d subarrays\n"
        (C4cam.Report.si_time r.latency)
        (C4cam.Report.si_energy r.energy)
        (C4cam.Report.si_power r.power)
        r.stats.n_subarrays)
    [ 1; 2 ]
