(* K-nearest-neighbour classification of pneumonia-like image features
   (the paper's second benchmark) on an MCAM with Euclidean best-match
   search.

   The TorchScript kernel is the batched broadcast idiom
   (query - stored, norm, topk); C4CAM recognises it as the
   Euclidean-norm pattern of Algorithm 1, partitions it over the
   subarrays and maps it onto the hierarchy. The returned neighbour
   lists are validated against the exact software KNN.

   Run with:  dune exec examples/knn_pneumonia.exe *)

let n_train = 512
let n_features = 256
let k = 7

let () =
  let ds =
    Workloads.Dataset.pneumonia_like ~seed:17 ~n_features
      ~samples_per_class:280 ()
  in
  let train, test = Workloads.Dataset.split ~seed:21 ds ~train_fraction:0.94 in
  let train =
    {
      train with
      Workloads.Dataset.features = Array.sub train.features 0 n_train;
      labels = Array.sub train.labels 0 n_train;
    }
  in
  let queries = Array.sub test.features 0 16 in
  let labels = Array.sub test.labels 0 16 in
  let q = Array.length queries in
  Printf.printf "KNN: %d stored patterns x %d features, %d queries, k=%d\n"
    n_train n_features q k;

  let source = C4cam.Kernels.knn_euclidean ~q ~dims:n_features ~n:n_train ~k in
  print_string "\nTorchScript kernel:\n";
  print_string source;

  List.iter
    (fun opt ->
      let spec =
        { (Archspec.Spec.square 32 opt) with cam_kind = Archspec.Spec.Mcam }
      in
      let compiled = C4cam.Driver.compile ~spec source in
      let r = C4cam.Driver.run_cam compiled ~queries ~stored:train.features in

      (* Validate the neighbour lists against software KNN. *)
      let exact_matches = ref 0 in
      Array.iteri
        (fun i query ->
          let sw = Workloads.Knn.neighbours ~train ~k query in
          if Array.map snd sw = r.indices.(i) then incr exact_matches)
        queries;

      (* Majority-vote classification accuracy. *)
      let correct = ref 0 in
      Array.iteri
        (fun i (row : int array) ->
          let votes = Array.make train.n_classes 0 in
          Array.iter
            (fun idx ->
              votes.(train.labels.(idx)) <- votes.(train.labels.(idx)) + 1)
            row;
          let best = if votes.(1) > votes.(0) then 1 else 0 in
          if best = labels.(i) then incr correct)
        r.indices;

      Printf.printf
        "\n%-24s neighbour lists exact: %d/%d | accuracy %d/%d\n"
        (C4cam.Dse.config_name spec)
        !exact_matches q !correct q;
      Printf.printf
        "  latency %s | energy %s | power %s | EDP %.3e J.s | %d subarrays, %d banks\n"
        (C4cam.Report.si_time r.latency)
        (C4cam.Report.si_energy r.energy)
        (C4cam.Report.si_power r.power)
        (r.energy *. r.latency)
        r.stats.n_subarrays r.stats.n_banks)
    Archspec.Spec.[ Base; Power ]
