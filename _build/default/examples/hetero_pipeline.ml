(* Heterogeneous compilation: one TorchScript module defining two
   kernels, each compiled against its own device specification and run
   concurrently on separate banks (the paper's conclusions point at
   exactly this: "the architecture specification ... also enables the
   specification of heterogeneous systems").

   Kernel 1 (classify): HDC dot similarity on a binary TCAM.
   Kernel 2 (rank):     Euclidean KNN on an MCAM.

   Run with:  dune exec examples/hetero_pipeline.exe *)

let source =
  {|
def classify(input: Tensor[16, 1024], weight: Tensor[10, 1024]) -> Tensor:
    others = weight.transpose(-2, -1)
    scores = torch.matmul(input, others)
    values, indices = torch.topk(scores, 1, largest=True)
    return values, indices

def rank(query: Tensor[4, 1, 256], stored: Tensor[64, 256]) -> Tensor:
    diff = torch.sub(query, stored)
    dist = torch.norm(diff, 2, -1)
    values, indices = torch.topk(dist, 5, largest=False)
    return values, indices
|}

let () =
  let specs =
    [
      ("classify", Archspec.Spec.square 32 Archspec.Spec.Base);
      ( "rank",
        { (Archspec.Spec.square 16 Archspec.Spec.Base) with
          cam_kind = Archspec.Spec.Mcam } );
    ]
  in
  let kernels = C4cam.Hetero.compile_module ~specs source in
  List.iter
    (fun (c : C4cam.Driver.compiled) ->
      Printf.printf "compiled @%s for a %dx%d %s\n" c.fn_name c.spec.rows
        c.spec.cols
        (Archspec.Spec.cam_kind_to_string c.spec.cam_kind))
    kernels;

  let classify, rank =
    match kernels with [ a; b ] -> (a, b) | _ -> assert false
  in
  let hdc =
    Workloads.Hdc.synthetic ~seed:5 ~dims:1024 ~n_classes:10 ~n_queries:16
      ~bits:1 ()
  in
  let ds =
    Workloads.Dataset.pneumonia_like ~seed:6 ~n_features:256
      ~samples_per_class:32 ()
  in
  let outcome =
    C4cam.Hetero.run_concurrent
      [
        { t_compiled = classify; t_queries = hdc.queries;
          t_stored = hdc.stored };
        { t_compiled = rank;
          t_queries = Array.sub ds.features 0 4;
          t_stored = ds.features };
      ]
  in
  List.iter2
    (fun (c : C4cam.Driver.compiled) (r : C4cam.Driver.run_result) ->
      Printf.printf "\n@%s: latency %s, energy %s, %d subarrays\n"
        c.fn_name
        (C4cam.Report.si_time r.latency)
        (C4cam.Report.si_energy r.energy)
        r.stats.n_subarrays)
    kernels outcome.per_task;
  Printf.printf
    "\nbatch latency: %s concurrent vs %s sequential (%.2fx from \
     task-level parallelism)\ntotal energy : %s\n"
    (C4cam.Report.si_time outcome.latency)
    (C4cam.Report.si_time outcome.sequential_latency)
    (outcome.sequential_latency /. outcome.latency)
    (C4cam.Report.si_energy outcome.energy)
