(* Recommender-system style task-level parallelism across banks
   (Section II-C: "RecSys can profit from CAMs in both filtering and
   ranking stages, where each stage executes different tasks on
   different banks in parallel").

   Stage 1 (bank 0): FILTER — a threshold search marks catalogue items
   within a Hamming radius of the user's preference vector.
   Stage 2 (bank 1): RANK — a best-match search orders a (pre-staged)
   candidate shard for the *previous* batch of users while stage 1
   filters the current one; with both banks active concurrently, batch
   latency is the maximum of the stages rather than their sum.

   Run with:  dune exec examples/recsys_banks.exe *)

let dims = 64
let n_items = 24
let radius = 22.

let () =
  let rng = Workloads.Prng.create 99 in
  let rand_vec () =
    Array.init dims (fun _ -> if Workloads.Prng.bool rng 0.5 then 1. else 0.)
  in
  let catalogue = Array.init n_items (fun _ -> rand_vec ()) in
  let user = rand_vec () in

  let spec =
    { (Archspec.Spec.square 32 Archspec.Spec.Base) with cols = dims }
  in
  let sim = Camsim.Simulator.create spec in
  Camsim.Simulator.set_query_hint sim 1;
  let alloc_chain () =
    let bank = Camsim.Simulator.alloc_bank sim ~rows:32 ~cols:dims in
    let mat = Camsim.Simulator.alloc_mat sim bank in
    let arr = Camsim.Simulator.alloc_array sim mat in
    Camsim.Simulator.alloc_subarray sim arr
  in
  let filter_sub = alloc_chain () in
  let rank_sub = alloc_chain () in

  (* Stage 1: threshold filtering of the catalogue. *)
  let w1 =
    Camsim.Simulator.write sim filter_sub ~row_offset:0 catalogue
  in
  let s1 =
    Camsim.Simulator.search sim filter_sub ~queries:[| user |] ~row_offset:0
      ~rows:n_items ~kind:`Threshold ~metric:`Hamming ~threshold:radius ()
  in
  let flags = (Camsim.Simulator.read sim filter_sub).(0) in
  let candidates =
    Array.to_list flags
    |> List.mapi (fun i f -> (i, f))
    |> List.filter (fun (_, f) -> f = 1.)
    |> List.map fst
  in
  Printf.printf "filter stage: %d of %d items within radius %.0f: [%s]\n"
    (List.length candidates) n_items radius
    (String.concat "; " (List.map string_of_int candidates));

  (* Stage 2: rank the candidate shard with a best-match search. *)
  let shard = Array.of_list (List.map (fun i -> catalogue.(i)) candidates) in
  let w2 = Camsim.Simulator.write sim rank_sub ~row_offset:0 shard in
  let s2 =
    Camsim.Simulator.search sim rank_sub ~queries:[| user |] ~row_offset:0
      ~rows:(Array.length shard) ~kind:`Best ~metric:`Hamming ()
  in
  let dists = Camsim.Simulator.read sim rank_sub in
  let (_, ranked), sel =
    Camsim.Simulator.select_best sim ~dist:dists ~k:(min 3 (Array.length shard))
      ~largest:false
  in
  Printf.printf "rank stage: top items for the user: [%s]\n"
    (String.concat "; "
       (Array.to_list
          (Array.map (fun i -> string_of_int (List.nth candidates i))
             ranked.(0))));

  (* Latency accounting: sequential vs bank-parallel pipelining. *)
  let open Camsim.Energy_model in
  let stage1 = w1.latency +. s1.latency in
  let stage2 = w2.latency +. s2.latency +. sel.latency in
  Printf.printf
    "\nstage latencies: filter %s, rank %s\n"
    (C4cam.Report.si_time stage1) (C4cam.Report.si_time stage2);
  Printf.printf "one bank (sequential stages): %s per batch\n"
    (C4cam.Report.si_time (stage1 +. stage2));
  Printf.printf "two banks (pipelined stages) : %s per batch (%.2fx)\n"
    (C4cam.Report.si_time (Float.max stage1 stage2))
    ((stage1 +. stage2) /. Float.max stage1 stage2);
  Printf.printf "\n%s\n"
    (Camsim.Stats.to_string (Camsim.Simulator.stats sim))
