(* Ternary don't-care matching: the classic TCAM use case (longest-prefix
   routing) on the simulator's direct device API.

   Each routing rule stores a bit-prefix followed by wildcard cells; an
   exact-match search returns, for every queried address, which rules it
   satisfies (distance 0 over the care cells). Priority (longest prefix)
   is resolved by storing more-specific rules in lower rows.

   This exercises the TCAM write path with explicit care masks and the
   exact-match search kind — the parts of the CAM background
   (Section II-B) that the similarity benchmarks do not touch.

   Run with:  dune exec examples/tcam_wildcard.exe *)

let width = 16

(* A rule is a bit-prefix: "10110*" -> cells [1;0;1;1;0], wildcards after. *)
let rule prefix next_hop =
  let cells = Array.make width 0. in
  let care = Array.make width false in
  String.iteri
    (fun i c ->
      cells.(i) <- (if c = '1' then 1. else 0.);
      care.(i) <- true)
    prefix;
  (cells, care, prefix, next_hop)

let address bits =
  Array.init width (fun i ->
      if i < String.length bits && bits.[i] = '1' then 1. else 0.)

let () =
  let rules =
    [
      rule "1011010" "eth3 (most specific)";
      rule "10110" "eth2";
      rule "101" "eth1";
      rule "" "eth0 (default route)";
    ]
  in
  let spec =
    { (Archspec.Spec.square 32 Archspec.Spec.Base) with cols = width }
  in
  let sim = Camsim.Simulator.create spec in
  let bank = Camsim.Simulator.alloc_bank sim ~rows:32 ~cols:width in
  let mat = Camsim.Simulator.alloc_mat sim bank in
  let arr = Camsim.Simulator.alloc_array sim mat in
  let sub = Camsim.Simulator.alloc_subarray sim arr in
  List.iteri
    (fun i (cells, care, _, _) ->
      ignore
        (Camsim.Simulator.write_ternary sim sub ~row_offset:i
           ~care:[| care |] [| cells |]))
    rules;

  let lookup bits =
    let _ =
      Camsim.Simulator.search sim sub ~queries:[| address bits |]
        ~row_offset:0 ~rows:(List.length rules) ~kind:`Exact
        ~metric:`Hamming ()
    in
    let matches = (Camsim.Simulator.read sim sub).(0) in
    (* exact match = zero mismatching care cells; rows are ordered most
       specific first *)
    let rec first i =
      if i >= Array.length matches then None
      else if matches.(i) = 0. then Some i
      else first (i + 1)
    in
    match first 0 with
    | Some i ->
        let _, _, prefix, hop = List.nth rules i in
        Printf.printf "%-16s -> %-12s (rule %d, prefix %S)\n" bits hop i
          prefix
    | None -> Printf.printf "%-16s -> no route\n" bits
  in
  print_endline "TCAM longest-prefix routing table lookups:";
  List.iter lookup
    [ "1011010"; "1011011"; "1011000"; "1010000"; "0110000"; "1111111" ];
  Printf.printf "\n%s\n"
    (Camsim.Stats.to_string (Camsim.Simulator.stats sim))
